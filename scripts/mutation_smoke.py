#!/usr/bin/env python
"""CI smoke test for the live-mutation layer (`repro.delta`).

Mutates a served index under a chaos ``FaultPlan`` — inserts, deletes,
an update, then a compaction that is *crashed mid-flight* by the plan —
and asserts the LSM contract end to end:

* the crashed compaction rolls back: old generation serving, failure
  reported exactly once, the on-disk artifact untouched;
* a clean retry absorbs the memtable and bumps the generation;
* the journal makes it durable: a fresh ``repro query --journal`` CLI
  process replays base-file + journal and answers **byte-for-byte**
  identically to a from-scratch rebuild over the saved mutated database
  (same answer ids, gains, π, ordering, formatting).

Both layouts run: a single ``--index`` artifact and a 4-shard
``--shards`` bundle (where the crash lands mid shard rebuild and the
clean retry reuses every unchanged shard).

Run from the repo root: ``python scripts/mutation_smoke.py``.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

BASE_GRAPHS = 36
THETA = "10"


def run_cli(*args) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=env, timeout=600,
    )


def mutate_under_chaos(
    artifact: Path, base_path: Path, journal_path: Path, full_db,
    crash_stage: str, *, sharded: bool, failures: list[str],
) -> None:
    """The in-process half: mutate, crash one compaction, retry, mutate
    again so the journal holds post-compaction records too."""
    import repro
    from repro.delta import CompactionError
    from repro.resilience import faults

    index = repro.open_index(
        artifact, base_path, mutable=True,
        journal=journal_path, shards=sharded,
    )
    theta = float(THETA)
    for gid in range(BASE_GRAPHS, BASE_GRAPHS + 4):
        index.insert(full_db[gid], full_db.features[gid])
    index.delete(3)
    index.update(7, full_db[BASE_GRAPHS + 4], full_db.features[BASE_GRAPHS + 4])
    before = index.query(lambda g: True, theta, 5)

    faults.install(faults.FaultPlan(abort_after_stage=crash_stage))
    try:
        index.compact()
        failures.append(f"{crash_stage}: compaction survived the crash plan")
    except CompactionError:
        pass
    finally:
        faults.clear()
    if index.generation != 0:
        failures.append(f"crashed compaction bumped generation to "
                        f"{index.generation}")
    if index.compaction_failures != 1:
        failures.append(f"rollback reported {index.compaction_failures} "
                        f"times, expected exactly once")
    after_crash = index.query(lambda g: True, theta, 5)
    if (after_crash.answer, after_crash.gains) != (before.answer, before.gains):
        failures.append("old generation stopped serving after the crash")

    report = index.compact()
    if index.generation != 1 or report["absorbed"] != 5:
        failures.append(f"clean retry did not absorb the memtable: {report}")
    if sharded and report["reused_shards"] < 1:
        failures.append(f"sharded compaction reused no shards: {report}")

    # Post-compaction mutations: the journal must replay across the swap.
    index.insert(full_db[BASE_GRAPHS + 5], full_db.features[BASE_GRAPHS + 5])
    index.delete(11)
    index.query(lambda g: True, theta, 5)
    if index.stats()["delta"]["journal_records"] != 8:
        failures.append("journal does not hold all eight mutation records")
    index.close()


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        full_path = tmp / "full.jsonl"
        generated = run_cli("generate", "dud", "--num-graphs", "44",
                            "--seed", "3", "--output", str(full_path))
        if generated.returncode != 0:
            print(generated.stderr, file=sys.stderr)
            return 1

        from repro.graphs.io import load_database, save_database

        full_db = load_database(full_path)
        base_path = tmp / "base.jsonl"
        save_database(full_db.subset(range(BASE_GRAPHS)), base_path)

        idx = tmp / "idx.npz"
        bundle = tmp / "bundle"
        for step in (
            run_cli("build-index", str(base_path), "--output", str(idx),
                    "--seed", "3"),
            run_cli("shard-build", str(base_path), "--output", str(bundle),
                    "--shards", "4", "--seed", "3"),
        ):
            if step.returncode != 0:
                print(step.stderr, file=sys.stderr)
                return 1

        layouts = [
            ("single", idx, False, "delta.compact.commit",
             ("--index", str(idx))),
            ("sharded", bundle / "manifest.json", True, "delta.compact.shard",
             ("--shards", str(bundle / "manifest.json"))),
        ]
        for name, artifact, sharded, crash_stage, cli_flags in layouts:
            journal = tmp / f"{name}.journal"
            mutate_under_chaos(
                artifact, base_path, journal, full_db, crash_stage,
                sharded=sharded, failures=failures,
            )

            # Byte-for-byte: journal replay vs rebuild over the saved
            # mutated database (tombstones round-trip through the file).
            import repro

            reopened = repro.open_index(
                artifact, base_path, mutable=True,
                journal=journal, shards=sharded,
            )
            mutated_path = tmp / f"{name}-mutated.jsonl"
            snapshot = reopened.database.subset(
                range(len(reopened.database))
            )
            for gid in reopened.database.deleted:
                snapshot.mark_deleted(gid)
            save_database(snapshot, mutated_path)
            reopened.close()

            query_args = ("--k", "5", "--theta", THETA, "--seed", "3")
            live = run_cli("query", str(base_path), *cli_flags,
                           "--journal", str(journal), *query_args)
            rebuilt = run_cli("query", str(mutated_path), *query_args)
            if live.returncode != 0:
                failures.append(f"{name}: live query failed: {live.stderr}")
            if rebuilt.returncode != 0:
                failures.append(f"{name}: rebuild query failed: "
                                f"{rebuilt.stderr}")
            if live.stdout != rebuilt.stdout:
                failures.append(
                    f"{name}: mutated-index output differs from rebuild:\n"
                    f"--- live (journal replay) ---\n{live.stdout}"
                    f"--- rebuilt from scratch ---\n{rebuilt.stdout}"
                )

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("mutation smoke: OK (crash rollback + journal replay "
          "byte-identical to rebuild, single and 4-shard)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Build-time metric spot checking (failure injection)."""

import pytest

from repro.ged import StarDistance
from repro.index import NBIndex
from tests.conftest import random_database


class TestValidateMetric:
    def test_true_metric_passes(self):
        db = random_database(seed=0, size=25)
        index = NBIndex.build(
            db, StarDistance(), num_vantage_points=3, branching=3,
            seed=0, validate_metric=True,
        )
        assert index.tree.num_nodes > 0

    def test_asymmetric_distance_rejected(self):
        db = random_database(seed=1, size=20)

        def asymmetric(g1, g2):
            return float(g1.graph_id * 31 + g2.graph_id)

        with pytest.raises(ValueError, match="not symmetric|!= 0"):
            NBIndex.build(
                db, asymmetric, num_vantage_points=3, branching=3,
                seed=0, validate_metric=True,
            )

    def test_triangle_violation_rejected(self):
        db = random_database(seed=2, size=20)

        def non_metric(g1, g2):
            a, b = g1.graph_id, g2.graph_id
            if a == b:
                return 0.0
            # Huge distance for one specific pair, tiny otherwise — breaks
            # the triangle through any third point.
            lo, hi = min(a, b), max(a, b)
            return 1000.0 if (lo, hi) == (0, 1) else 1.0

        with pytest.raises(ValueError, match="triangle"):
            NBIndex.build(
                db, non_metric, num_vantage_points=3, branching=3,
                seed=0, validate_metric=True,
            )

    def test_negative_distance_rejected(self):
        db = random_database(seed=3, size=15)

        def negative(g1, g2):
            return -1.0 if g1.graph_id != g2.graph_id else 0.0

        with pytest.raises(ValueError):
            NBIndex.build(
                db, negative, num_vantage_points=3, branching=3,
                seed=0, validate_metric=True,
            )

    def test_default_skips_validation(self):
        """Without the flag, even a broken distance builds (documented:
        correctness is then the caller's problem)."""
        db = random_database(seed=4, size=12)
        calls = {"n": 0}

        def weird(g1, g2):
            calls["n"] += 1
            return abs(g1.graph_id - g2.graph_id) * 0.5

        index = NBIndex.build(
            db, weird, num_vantage_points=2, branching=3, seed=0,
        )
        assert index is not None

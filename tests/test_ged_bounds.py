"""Cheap GED bounds: validity against exact GED and the star distance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ged import (
    ExactGED,
    StarDistance,
    edge_count_lower_bound,
    label_lower_bound,
    size_lower_bound,
    trivial_upper_bound,
)
from repro.graphs import LabeledGraph, cycle_graph, path_graph

_LABELS = ("C", "N", "O")


@st.composite
def small_graph(draw, max_nodes=5):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = [draw(st.sampled_from(_LABELS)) for _ in range(n)]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return LabeledGraph(labels, edges)


class TestKnownValues:
    def test_label_bound_disjoint(self):
        a = path_graph(["A", "A"])
        b = path_graph(["B", "B", "B"])
        # max(2,3) - 0 common
        assert label_lower_bound(a, b) == 3.0

    def test_label_bound_partial(self):
        a = LabeledGraph(["C", "C", "O"])
        b = LabeledGraph(["C", "N"])
        assert label_lower_bound(a, b) == 2.0  # max(3,2) - 1 common

    def test_edge_count_bound(self):
        a = cycle_graph(["C"] * 4)  # 4 edges
        b = path_graph(["C"] * 3)  # 2 edges
        assert edge_count_lower_bound(a, b) == 2.0

    def test_size_bound_additive(self):
        a = cycle_graph(["C"] * 4)
        b = path_graph(["N"] * 3)
        assert size_lower_bound(a, b) == label_lower_bound(a, b) + 2.0

    def test_trivial_upper_bound(self):
        a = path_graph(["C", "C"])
        b = path_graph(["N"])
        assert trivial_upper_bound(a, b) == 3 + 1


class TestValidity:
    @settings(max_examples=30, deadline=None)
    @given(small_graph(), small_graph())
    def test_bounds_sandwich_exact_ged(self, a, b):
        exact = ExactGED()(a, b)
        assert size_lower_bound(a, b) <= exact + 1e-9
        assert exact <= trivial_upper_bound(a, b) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(small_graph(), small_graph())
    def test_size_bound_also_lower_bounds_star_distance(self, a, b):
        # The C-tree pruning rule relies on this domination (see
        # repro.baselines.ctree docstring).
        assert size_lower_bound(a, b) <= StarDistance()(a, b) + 1e-9

    def test_bounds_zero_for_identical(self):
        g = cycle_graph(["C", "N", "O"])
        assert size_lower_bound(g, g) == 0.0

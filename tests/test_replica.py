"""Replicated multi-process serving: bit-identity, failover, degradation.

The load-bearing claims under test:

* A replicated cluster answers **bit-identically** to the in-process
  ``ShardedIndex`` over the same bundle — including while replicas are
  being killed and wedged mid-query (chaos pinned to replica 0 so one
  sibling always survives).
* A **whole replica group down** degrades to a flagged partial answer
  over the surviving shards — typed, fast, never a hang or a crash.
* A replica answering with **malformed or oversized frames** costs one
  typed failover (counted once), never a coordinator crash.
* ``repro serve`` turns **SIGTERM/SIGINT** into the graceful-drain path,
  answering everything already admitted before exiting 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from tests.conftest import random_database
from repro import obs
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.graphs.io import save_database
from repro.index.pivec import ThresholdLadder
from repro.replica import ReplicatedIndex, ShardUnavailableError
from repro.replica import wire
from repro.replica.errors import (
    ReplicaDead,
    ReplicaProtocolError,
    ReplicaUnreachable,
)
from repro.replica.router import ReplicaRouter
from repro.replica.supervisor import WorkerHandle
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.shard import ShardedIndex, build_shards

LADDER = ThresholdLadder([2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 40.0])
BUILD = dict(num_vantage_points=6, branching=4, thresholds=LADDER)


@pytest.fixture(scope="module")
def cluster_db():
    return random_database(seed=17, size=48)


@pytest.fixture(scope="module")
def bundle(cluster_db, tmp_path_factory):
    out = tmp_path_factory.mktemp("replica-bundle")
    return build_shards(
        cluster_db, StarDistance(), num_shards=3, out_dir=out, seed=7,
        **BUILD,
    )


@pytest.fixture(scope="module")
def relevance_fn(cluster_db):
    return quartile_relevance(cluster_db, quantile=0.5)


@pytest.fixture(scope="module")
def reference(bundle, cluster_db, relevance_fn):
    """Single-process answers for every (theta, k) the tests replay."""
    sharded = ShardedIndex.load(bundle, cluster_db, StarDistance())
    refs = {
        (theta, k): sharded.query(relevance_fn, theta, k)
        for theta in (6.0, 8.0) for k in (3, 5)
    }
    sharded.close()
    return refs


def _assert_identical(got, ref):
    assert got.answer == ref.answer
    assert got.gains == ref.gains
    assert got.covered == ref.covered
    assert got.num_relevant == ref.num_relevant
    assert not got.stats.partial


class TestBitIdentity:
    @pytest.mark.parametrize("replicas", [1, 2])
    def test_matches_sharded_index(
        self, bundle, cluster_db, relevance_fn, reference, replicas,
    ):
        with ReplicatedIndex.open(
            bundle, cluster_db, StarDistance(), replicas=replicas,
        ) as rep:
            for (theta, k), ref in reference.items():
                _assert_identical(rep.query(relevance_fn, theta, k), ref)

    def test_session_reuse_across_thetas(
        self, bundle, cluster_db, relevance_fn, reference,
    ):
        with ReplicatedIndex.open(
            bundle, cluster_db, StarDistance(), replicas=2,
        ) as rep:
            session = rep.session(relevance_fn)
            for (theta, k), ref in reference.items():
                _assert_identical(session.query(theta, k), ref)

    def test_rejects_opaque_relevance(self, bundle, cluster_db):
        with ReplicatedIndex.open(
            bundle, cluster_db, StarDistance(), replicas=1,
        ) as rep:
            with pytest.raises(TypeError, match="wire-expressible"):
                rep.session(lambda matrix: matrix[:, 0] > 0.5)

    def test_read_only_surface(self, bundle, cluster_db):
        from repro.index.errors import ReadOnlyIndexError

        with ReplicatedIndex.open(
            bundle, cluster_db, StarDistance(), replicas=1,
        ) as rep:
            assert rep.mutable is False
            with pytest.raises(ReadOnlyIndexError):
                rep.delete(0)
            with pytest.raises(TypeError, match="unexpected keyword"):
                rep.query(None, 8.0, 3, nonsense=True)


class TestChaosKills:
    def test_kill_churn_keeps_answers_identical(
        self, bundle, cluster_db, relevance_fn, reference,
    ):
        # Replica 0 of every shard dies every 12 ops, forever (each
        # restarted process serves 11 ops then dies again).  Replica 1
        # never dies, so the group stays available and the coordinator
        # fails over mid-query as kills land.
        plan = FaultPlan(replica_kill_every=12, replica_kill_replicas=(0,))
        with faults.injected(plan):
            with ReplicatedIndex.open(
                bundle, cluster_db, StarDistance(), replicas=2,
                heartbeat_s=0.1,
            ) as rep:
                for _ in range(3):
                    for (theta, k), ref in reference.items():
                        _assert_identical(
                            rep.query(relevance_fn, theta, k), ref
                        )
                # Kills definitely happened (ops served ≫ kill_every);
                # give the monitor a beat to complete a restart.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if rep.supervisor.stats()["restarts"] > 0:
                        break
                    time.sleep(0.05)
                stats = rep.supervisor.stats()
        assert stats["spawns"] > 6  # initial fleet was 6
        assert stats["restarts"] > 0

    def test_wedged_replica_fails_over(
        self, bundle, cluster_db, relevance_fn, reference, tmp_path,
    ):
        # One-shot wedge on replica 0: the first worker to claim the
        # token sleeps well past the op timeout.  The caller times out,
        # poisons the connection, and the answer comes from the sibling.
        token = tmp_path / "wedge-token"
        token.write_text("wedge")
        plan = FaultPlan(
            replica_wedge_token=str(token),
            replica_wedge_seconds=5.0,
            replica_kill_replicas=(0,),
        )
        with faults.injected(plan):
            with ReplicatedIndex.open(
                bundle, cluster_db, StarDistance(), replicas=2,
                op_timeout_s=1.0,
            ) as rep:
                ref = reference[(8.0, 5)]
                _assert_identical(rep.query(relevance_fn, 8.0, 5), ref)
        assert not token.exists()  # the wedge actually fired

    def test_monitor_restarts_crashed_worker(
        self, bundle, cluster_db, relevance_fn, reference,
    ):
        with ReplicatedIndex.open(
            bundle, cluster_db, StarDistance(), replicas=2,
            heartbeat_s=0.1,
        ) as rep:
            handle = rep.supervisor.groups[0][0]
            first_generation = handle.generation
            handle.proc.kill()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if handle.alive and handle.generation > first_generation:
                    break
                time.sleep(0.05)
            assert handle.alive and handle.generation > first_generation
            # The restarted fleet still answers identically.
            ref = reference[(8.0, 5)]
            _assert_identical(rep.query(relevance_fn, 8.0, 5), ref)


def _private_bundle(bundle, tmp_path):
    """Copy the shared bundle so a test can destroy artifacts safely."""
    import shutil

    target = tmp_path / "bundle"
    shutil.copytree(Path(bundle).parent, target)
    return target / Path(bundle).name


class TestGroupDown:
    def test_whole_group_down_degrades_to_partial(
        self, bundle, cluster_db, relevance_fn, tmp_path,
    ):
        bundle = _private_bundle(bundle, tmp_path)
        with ReplicatedIndex.open(
            bundle, cluster_db, StarDistance(), replicas=2,
            op_timeout_s=2.0,
        ) as rep:
            # Make shard 0 unrecoverable (artifact gone → respawn fails
            # its handshake), then kill its whole group.
            artifact = rep.manifest.artifact_path(0, Path(bundle).parent)
            os.unlink(artifact)
            for handle in rep.supervisor.groups[0]:
                rep.supervisor.report_failure(handle)
            started = time.monotonic()
            got = rep.query(relevance_fn, 8.0, 5)
            elapsed = time.monotonic() - started
            assert got.stats.partial
            assert got.stats.unavailable_shards == [0]
            assert got.stats.degraded
            assert (
                got.stats.degradations["replica.shard_unavailable"] == 1
            )
            # Partial means *only shard 0's members are unserved*: no
            # answered graph lives there, and the answer is exactly the
            # greedy over the surviving shards.
            assert all(int(rep.shard_of[g]) != 0 for g in got.answer)
            assert got.answer  # survivors still answered
            assert elapsed < 30.0  # degraded, not hung

    def test_all_groups_down_still_answers(
        self, bundle, cluster_db, relevance_fn, tmp_path,
    ):
        bundle = _private_bundle(bundle, tmp_path)
        with ReplicatedIndex.open(
            bundle, cluster_db, StarDistance(), replicas=1,
            op_timeout_s=2.0,
        ) as rep:
            base = Path(bundle).parent
            for shard_id in range(rep.num_shards):
                os.unlink(rep.manifest.artifact_path(shard_id, base))
            for group in rep.supervisor.groups:
                for handle in group:
                    rep.supervisor.report_failure(handle)
            got = rep.query(relevance_fn, 8.0, 5)
            assert got.stats.partial
            assert got.stats.unavailable_shards == [0, 1, 2]
            assert got.answer == [] and got.gains == []


# ---------------------------------------------------------------------------
# Malformed / oversized frames (fake worker on a socketpair)
# ---------------------------------------------------------------------------
class _StubSupervisor:
    """Just enough Supervisor surface for the router: live + failures."""

    def __init__(self, handles, max_frame_bytes=wire.MAX_FRAME_BYTES):
        self.replicas = len(handles)
        self.max_frame_bytes = max_frame_bytes
        self.handles = handles
        self.failures = []

    def live(self, shard_id):
        return [h for h in self.handles if h.alive]

    def report_failure(self, handle):
        handle.mark_dead()
        self.failures.append(handle)


def _fake_worker(responses):
    """A WorkerHandle whose 'process' is an in-test thread.

    ``responses(request) -> bytes`` decides each raw reply; the thread
    exits on EOF."""
    parent, child = socket.socketpair()
    handle = WorkerHandle(0, 0)
    handle.sock = parent
    handle.reader = parent.makefile("rb")
    handle.alive = True

    def serve():
        reader = child.makefile("rb")
        try:
            while True:
                line = reader.readline()
                if not line:
                    return
                try:
                    child.sendall(responses(json.loads(line)))
                except OSError:
                    return
        finally:
            reader.close()
            child.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return handle


def _good_worker():
    return _fake_worker(
        lambda req: (json.dumps(
            {"ok": True, "r": {"pong": True, "echo": req.get("op")}}
        ) + "\n").encode()
    )


class TestMalformedFrames:
    def test_garbage_frame_is_typed_and_counted_once(self):
        evil = _fake_worker(lambda req: b"this is not json\n")
        with obs.observe() as observation:
            with pytest.raises(ReplicaProtocolError):
                evil.call({"op": "ping"}, timeout=5.0)
            counters = observation.stats()["counters"]
        assert counters["replica.protocol_errors"] == 1
        assert not evil.alive  # poisoned, never reused

    def test_oversized_frame_is_typed_and_counted_once(self):
        evil = _fake_worker(
            lambda req: b'{"ok": true, "r": {"pad": "'
            + b"x" * 4096 + b'"}}\n'
        )
        with obs.observe() as observation:
            with pytest.raises(ReplicaProtocolError, match="exceeds"):
                evil.call({"op": "ping"}, timeout=5.0, max_frame=1024)
            counters = observation.stats()["counters"]
        assert counters["replica.protocol_errors"] == 1

    def test_router_fails_over_on_malformed_frame(self):
        evil = _fake_worker(lambda req: b"\x00\xff garbage\n")
        good = _good_worker()
        supervisor = _StubSupervisor([evil, good])
        router = ReplicaRouter(supervisor, op_timeout_s=5.0)
        with obs.observe() as observation:
            result = router.call(0, {"op": "ping"})
            counters = observation.stats()["counters"]
        assert result["echo"] == "ping"  # the good sibling answered
        assert supervisor.failures == [evil]
        assert counters["replica.protocol_errors"] == 1
        assert counters["replica.failovers"] == 1

    def test_router_fails_over_on_non_object_result(self):
        evil = _fake_worker(
            lambda req: b'{"ok": true, "r": [1, 2, 3]}\n'
        )
        good = _good_worker()
        supervisor = _StubSupervisor([evil, good])
        router = ReplicaRouter(supervisor, op_timeout_s=5.0)
        result = router.call(0, {"op": "ping"})
        assert result["echo"] == "ping"
        assert supervisor.failures == [evil]

    def test_group_unavailable_when_all_replicas_corrupt(self):
        evil_a = _fake_worker(lambda req: b"nope\n")
        evil_b = _fake_worker(lambda req: b"also nope\n")
        supervisor = _StubSupervisor([evil_a, evil_b])
        router = ReplicaRouter(supervisor, op_timeout_s=5.0)
        with pytest.raises(ShardUnavailableError) as excinfo:
            router.call(0, {"op": "ping"})
        assert excinfo.value.shard_id == 0
        assert excinfo.value.causes  # transport causes recorded

    def test_peer_exit_is_replica_dead(self):
        def die(request):
            raise OSError("worker died mid-op")  # serve loop closes the pipe

        dead = _fake_worker(die)
        with pytest.raises(ReplicaDead):
            dead.call({"op": "ping"}, timeout=5.0)
        assert not dead.alive
        assert isinstance(ReplicaDead("x"), ReplicaUnreachable)


# ---------------------------------------------------------------------------
# Wire helpers
# ---------------------------------------------------------------------------
class TestWire:
    def test_words_round_trip(self):
        words = np.array([0, 2**63, 1234567], dtype=np.uint64)
        text = wire.words_to_wire(words)
        back = wire.words_from_wire(text, words.size)
        assert np.array_equal(words, back)

    def test_word_count_mismatch_is_typed(self):
        words = np.array([1, 2], dtype=np.uint64)
        text = wire.words_to_wire(words)
        with pytest.raises(ReplicaProtocolError):
            wire.words_from_wire(text, 3)

    def test_bad_hex_is_typed(self):
        with pytest.raises(ReplicaProtocolError):
            wire.words_from_wire("zz-not-hex", 1)


# ---------------------------------------------------------------------------
# SIGTERM / SIGINT graceful drain (satellite 1)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_serve_signal_drains_gracefully(tmp_path, signum):
    """``repro serve`` on stdin: a stop signal mid-request still answers
    everything admitted, prints the drain report, and exits 0."""
    db = random_database(seed=21, size=30)
    db_path = tmp_path / "db.jsonl"
    save_database(db, db_path)

    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(db_path),
         "--concurrency", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        requests = [
            {"id": i, "op": "query", "v": 1, "theta": 8.0, "k": 3,
             "quantile": 0.5}
            for i in range(2)
        ]
        for request in requests:
            proc.stdin.write(json.dumps(request) + "\n")
        proc.stdin.flush()
        # First response proves the index is built and a request is in
        # flight territory; the signal lands while stdin is still open.
        first = json.loads(proc.stdout.readline())
        assert first["ok"], first
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=60)
    except Exception:
        proc.kill()
        raise
    responses = [json.loads(line) for line in out.splitlines() if line.strip()]
    answered = {r["id"] for r in responses} | {first["id"]}
    assert answered == {0, 1}  # everything admitted was answered
    assert all(r["ok"] for r in responses)
    assert "drained:" in err
    assert proc.returncode == 0

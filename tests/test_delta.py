"""The mutation layer: dual-run bit-identity gate, journal crash
safety, compaction rollback, and the mutation-aware facade.

The acceptance property for `repro.delta` is *bit-identity*: after any
interleaving of insert/delete/update/query/compact, a query through the
mutable index returns exactly — ids, gains, order, coverage — what a
from-scratch NB-Index build over the mutated database returns.  The
hypothesis test below drives randomized mutation programs against that
oracle at S ∈ {1, 4}, with and without interleaved compactions.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.delta import (
    CompactionError,
    JournalError,
    MutableIndex,
    MutationJournal,
)
from repro.ged import StarDistance
from repro.graphs.io import load_database, save_database
from repro.index.errors import ReadOnlyIndexError
from repro.index.nbindex import NBIndex
from repro.index.persistence import save_index
from repro.resilience import faults
from repro.shard.build import build_shards
from repro.shard.sharded import ShardedIndex
from tests.conftest import random_connected_graph, random_database

DIST = StarDistance()


def _graph_pool(seed: int, count: int):
    """Deterministic pool of insertable graphs + feature rows."""
    rng = np.random.default_rng(seed)
    graphs = [
        random_connected_graph(rng, int(rng.integers(3, 7)))
        for _ in range(count)
    ]
    features = rng.random((count, 3))
    return graphs, features


def _make_mutable(tmp_path, num_shards: int, *, db_seed=71, size=24,
                  base=18, journal=False):
    """A MutableIndex over the first ``base`` graphs of a ``size`` db;
    the rest of the database rows stay available as insert material."""
    db = random_database(seed=db_seed, size=size, num_features=3)
    live = db.subset(range(base))
    if num_shards == 1:
        index = NBIndex.build(
            live, DIST, num_vantage_points=4, branching=4,
            seed=np.random.default_rng(0),
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        mutable = MutableIndex(
            live, index, distance=DIST, index_path=path, seed=0,
            journal=MutationJournal(tmp_path / "m.journal") if journal else None,
        )
    else:
        manifest_path = build_shards(
            live, DIST, num_shards=num_shards, out_dir=tmp_path / "bundle",
            num_vantage_points=4, branching=4, seed=0,
        )
        base_index = ShardedIndex.load(manifest_path, live, DIST)
        mutable = MutableIndex(
            live, base_index, distance=DIST, manifest_path=manifest_path,
            seed=0,
            journal=MutationJournal(tmp_path / "m.journal") if journal else None,
        )
    return mutable, db


def _oracle_result(mutable: MutableIndex, query_fn, theta, k):
    """From-scratch rebuild over the mutated database — the ground truth
    the delta layer must match bit for bit."""
    snapshot = mutable.database.subset(range(len(mutable.database)))
    for gid in mutable.database.deleted:
        snapshot.mark_deleted(gid)
    oracle = NBIndex.build(
        snapshot, DIST, num_vantage_points=4, branching=4,
        seed=np.random.default_rng(99), thresholds=mutable.ladder,
    )
    return oracle.query(query_fn, theta, k)


def _assert_identical(result, oracle):
    assert result.answer == oracle.answer
    assert result.gains == oracle.gains
    assert result.covered == oracle.covered
    assert result.num_relevant == oracle.num_relevant


class TestDualRunGate:
    """Randomized mutation programs vs the from-scratch oracle."""

    @pytest.mark.parametrize("num_shards", [1, 4])
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_mutation_program_is_bit_identical(
        self, tmp_path_factory, num_shards, data
    ):
        tmp = tmp_path_factory.mktemp(f"delta-s{num_shards}")
        mutable, _ = _make_mutable(tmp, num_shards)
        pool_graphs, pool_features = _graph_pool(
            data.draw(st.integers(0, 2**16), label="pool_seed"), 12
        )
        inserted = 0
        ops = data.draw(
            st.lists(
                st.sampled_from(
                    ["insert", "delete", "update", "compact", "query"]
                ),
                min_size=4, max_size=10,
            ),
            label="program",
        )
        query_fn = lambda g: True  # noqa: E731
        for op in ops:
            if op == "insert" and inserted < len(pool_graphs):
                mutable.insert(
                    pool_graphs[inserted], pool_features[inserted]
                )
                inserted += 1
            elif op == "delete":
                live = [
                    g for g in range(len(mutable.database))
                    if not mutable.database.is_deleted(g)
                ]
                if len(live) > 4:  # keep enough graphs to query
                    victim = live[
                        data.draw(
                            st.integers(0, len(live) - 1), label="victim"
                        )
                    ]
                    mutable.delete(victim)
            elif op == "update" and inserted < len(pool_graphs):
                live = [
                    g for g in range(len(mutable.database))
                    if not mutable.database.is_deleted(g)
                ]
                target = live[
                    data.draw(st.integers(0, len(live) - 1), label="target")
                ]
                mutable.update(
                    target, pool_graphs[inserted], pool_features[inserted]
                )
                inserted += 1
            elif op == "compact":
                mutable.compact()
            else:  # query: compare against the oracle mid-program
                theta = mutable.ladder.values[1]
                result = mutable.query(query_fn, theta, 4)
                _assert_identical(
                    result, _oracle_result(mutable, query_fn, theta, 4)
                )
        # Final dual run at two rungs regardless of the drawn program.
        for rung in (1, min(3, len(mutable.ladder) - 1)):
            theta = mutable.ladder.values[rung]
            result = mutable.query(query_fn, theta, 5)
            _assert_identical(
                result, _oracle_result(mutable, query_fn, theta, 5)
            )
        mutable.close()

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_tombstone_of_reinserted_id(self, tmp_path, num_shards):
        """Delete a graph, re-insert identical content: the tombstone
        masks only the old id and the clone answers as a fresh graph."""
        mutable, db = _make_mutable(tmp_path, num_shards)
        theta = mutable.ladder.values[1]
        victim = 3
        content = db[victim]
        features = db.features[victim]
        assert mutable.delete(victim) is True
        assert mutable.delete(victim) is False  # idempotent
        clone = mutable.insert(content, features)
        assert clone == len(mutable.database) - 1
        assert mutable.database.is_deleted(victim)
        assert not mutable.database.is_deleted(clone)
        result = mutable.query(lambda g: True, theta, 5)
        _assert_identical(
            result, _oracle_result(mutable, lambda g: True, theta, 5)
        )
        assert victim not in result.answer
        # Same invariant after the clone is absorbed into the base.
        mutable.compact()
        result = mutable.query(lambda g: True, theta, 5)
        _assert_identical(
            result, _oracle_result(mutable, lambda g: True, theta, 5)
        )
        mutable.close()

    def test_update_returns_fresh_id_and_masks_old(self, tmp_path):
        mutable, db = _make_mutable(tmp_path, 1)
        new_id = mutable.update(5, db[20], db.features[20])
        assert new_id == len(mutable.database) - 1
        assert mutable.database.is_deleted(5)
        with pytest.raises(ValueError):
            mutable.update(5, db[21], db.features[21])  # already deleted
        mutable.close()

    def test_compaction_during_query_via_rw_latch(self, tmp_path):
        """Queries racing an online compaction (and the generation swap
        under the write latch) all see a consistent index and answer
        bit-identically to the oracle."""
        mutable, db = _make_mutable(tmp_path, 4)
        for g in range(18, 24):
            mutable.insert(db[g], db.features[g])
        mutable.delete(2)
        theta = mutable.ladder.values[1]
        oracle = _oracle_result(mutable, lambda g: True, theta, 4)
        results, errors = [], []

        def _query_loop():
            try:
                for _ in range(3):
                    results.append(mutable.query(lambda g: True, theta, 4))
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=_query_loop) for _ in range(3)]
        for t in threads:
            t.start()
        report = mutable.compact()
        for t in threads:
            t.join()
        assert not errors
        assert report["generation"] == 1
        assert len(results) == 9
        for result in results:
            _assert_identical(result, oracle)
        mutable.close()


class TestCompactionCrashSafety:
    @pytest.mark.parametrize("stage", [
        "delta.compact.shard", "delta.compact.commit",
    ])
    def test_crash_rolls_back_and_reports_once(self, tmp_path, stage):
        mutable, db = _make_mutable(tmp_path, 4)
        for g in range(18, 23):
            mutable.insert(db[g], db.features[g])
        theta = mutable.ladder.values[1]
        oracle = _oracle_result(mutable, lambda g: True, theta, 4)
        faults.install(faults.FaultPlan(abort_after_stage=stage))
        try:
            with pytest.raises(CompactionError) as excinfo:
                mutable.compact()
        finally:
            faults.clear()
        assert isinstance(excinfo.value.__cause__, faults.SimulatedCrash)
        # Rolled back: old generation serving, failure counted once.
        assert mutable.generation == 0
        assert mutable.compactions == 0
        assert mutable.compaction_failures == 1
        assert mutable.memtable_size == 5
        _assert_identical(
            mutable.query(lambda g: True, theta, 4), oracle
        )
        # The manifest on disk still loads the old generation.
        reloaded = ShardedIndex.load(
            mutable.manifest_path, mutable.database.subset(range(18)), DIST
        )
        assert reloaded.manifest.num_graphs == 18
        # A clean retry absorbs everything.
        report = mutable.compact()
        assert report["absorbed"] == 5
        assert mutable.generation == 1
        _assert_identical(
            mutable.query(lambda g: True, theta, 4), oracle
        )
        mutable.close()

    def test_single_index_commit_crash_keeps_artifact(self, tmp_path):
        mutable, db = _make_mutable(tmp_path, 1)
        mutable.insert(db[20], db.features[20])
        before = (tmp_path / "index.npz").read_bytes()
        faults.install(
            faults.FaultPlan(abort_after_stage="delta.compact.commit")
        )
        try:
            with pytest.raises(CompactionError):
                mutable.compact()
        finally:
            faults.clear()
        assert (tmp_path / "index.npz").read_bytes() == before
        mutable.close()


class TestJournal:
    def test_replay_reproduces_database(self, tmp_path):
        mutable, db = _make_mutable(tmp_path, 1, journal=True)
        mutable.insert(db[20], db.features[20])
        mutable.delete(4)
        mutable.update(7, db[21], db.features[21])
        base = db.subset(range(18))
        save_database(base, tmp_path / "base.jsonl")
        mutable.close()

        journal = MutationJournal(tmp_path / "m.journal")
        replayed = load_database(tmp_path / "base.jsonl")
        counts = journal.replay_into(replayed)
        assert counts == {"inserts": 1, "deletes": 1, "updates": 1}
        assert len(replayed) == len(mutable.database)
        assert set(replayed.deleted) == set(mutable.database.deleted)
        journal.close()

    def test_torn_tail_is_truncated_with_warning(self, tmp_path):
        journal = MutationJournal(tmp_path / "j")
        journal.append_delete(3)
        journal.close()
        with (tmp_path / "j").open("a") as fh:
            fh.write('{"record": {"op": "delete", "gid"')  # crash mid-append
        with pytest.warns(RuntimeWarning, match="torn final journal"):
            reopened = MutationJournal(tmp_path / "j")
        assert reopened.num_records == 1
        reopened.close()
        # The truncation repaired the file: a third open is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            MutationJournal(tmp_path / "j").close()

    def test_midfile_corruption_raises(self, tmp_path):
        journal = MutationJournal(tmp_path / "j")
        journal.append_delete(3)
        journal.append_delete(4)
        journal.close()
        lines = (tmp_path / "j").read_text().splitlines()
        lines[1] = lines[1][:-10] + "corrupted}"
        (tmp_path / "j").write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="intact records after"):
            MutationJournal(tmp_path / "j")

    def test_wrong_schema_raises(self, tmp_path):
        from repro.delta.journal import _encode

        (tmp_path / "j").write_text(
            _encode({"op": "open", "schema": "other/v9"}) + "\n"
        )
        with pytest.raises(JournalError, match="unsupported journal schema"):
            MutationJournal(tmp_path / "j")


class TestFacade:
    def test_open_index_autodetects_and_wraps(self, tmp_path):
        db = random_database(seed=81, size=20, num_features=3)
        index = NBIndex.build(
            db, DIST, num_vantage_points=4, branching=4,
            seed=np.random.default_rng(0),
        )
        save_index(index, tmp_path / "index.npz")
        manifest = build_shards(
            db, DIST, num_shards=2, out_dir=tmp_path / "bundle",
            num_vantage_points=4, branching=4, seed=0,
        )
        single = repro.open_index(tmp_path / "index.npz", db)
        assert isinstance(single, NBIndex) and single.mutable is False
        sharded = repro.open_index(tmp_path / "bundle", db)  # directory
        assert isinstance(sharded, ShardedIndex)
        explicit = repro.open_index(manifest, db, shards=2)
        assert explicit.num_shards == 2
        with pytest.raises(ValueError, match="caller required 3"):
            repro.open_index(manifest, db, shards=3)
        mutable = repro.open_index(tmp_path / "index.npz", db, mutable=True)
        assert isinstance(mutable, MutableIndex) and mutable.mutable is True
        mutable.close()

    def test_readonly_mutations_raise_typed(self, tmp_path):
        db = random_database(seed=82, size=12, num_features=3)
        index = NBIndex.build(
            db, DIST, num_vantage_points=3, branching=3,
            seed=np.random.default_rng(0),
        )
        for method, args in [
            ("delete", (0,)),
            ("update", (0, db[1], db.features[1])),
            ("compact", ()),
        ]:
            with pytest.raises(ReadOnlyIndexError, match="mutable=True"):
                getattr(index, method)(*args)
        manifest = build_shards(
            db, DIST, num_shards=2, out_dir=tmp_path / "bundle",
            num_vantage_points=3, branching=3, seed=0,
        )
        sharded = ShardedIndex.load(manifest, db, DIST)
        with pytest.raises(ReadOnlyIndexError):
            sharded.insert(db[0], db.features[0])
        sharded.invalidate_pools()

    def test_deprecated_loaders_still_work_and_warn(self, tmp_path):
        db = random_database(seed=83, size=12, num_features=3)
        index = NBIndex.build(
            db, DIST, num_vantage_points=3, branching=3,
            seed=np.random.default_rng(0),
        )
        save_index(index, tmp_path / "index.npz")
        repro._deprecated_loader_warned.discard("load_index")
        with pytest.warns(DeprecationWarning, match="open_index"):
            loaded = repro.load_index(tmp_path / "index.npz", db)
        assert loaded.tree.num_nodes == index.tree.num_nodes

    def test_journal_reopen_restores_mutations(self, tmp_path):
        db = random_database(seed=84, size=22, num_features=3)
        base = db.subset(range(16))
        index = NBIndex.build(
            base, DIST, num_vantage_points=4, branching=4,
            seed=np.random.default_rng(0),
        )
        save_index(index, tmp_path / "index.npz")
        save_database(base, tmp_path / "base.jsonl")
        mutable = repro.open_index(
            tmp_path / "index.npz", tmp_path / "base.jsonl",
            mutable=True, journal=tmp_path / "m.journal",
        )
        theta = mutable.ladder.values[1]
        for g in range(16, 20):
            mutable.insert(db[g], db.features[g])
        mutable.delete(1)
        first = mutable.query(lambda g: True, theta, 4)
        mutable.close()
        reopened = repro.open_index(
            tmp_path / "index.npz", tmp_path / "base.jsonl",
            mutable=True, journal=tmp_path / "m.journal",
        )
        assert reopened.memtable_size == 4
        assert reopened.tombstones == 1
        _assert_identical(
            reopened.query(lambda g: True, theta, 4), first
        )
        reopened.close()

    def test_saved_database_roundtrips_tombstones(self, tmp_path):
        db = random_database(seed=85, size=10, num_features=3)
        db.mark_deleted(2)
        db.mark_deleted(7)
        save_database(db, tmp_path / "db.jsonl")
        loaded = load_database(tmp_path / "db.jsonl")
        assert set(loaded.deleted) == {2, 7}
        assert len(loaded) == 10

"""Distance-matrix oracle and traditional top-k baselines."""

import numpy as np
import pytest

from repro.baselines import DistanceMatrixOracle, answer_set_redundancy, traditional_top_k
from repro.core import baseline_greedy
from repro.ged import StarDistance
from repro.graphs import GraphDatabase, path_graph, quartile_relevance
from repro.graphs.relevance import WeightedScoreThreshold
from tests.conftest import random_database


class TestDistanceMatrixOracle:
    def test_matrix_symmetric(self):
        db = random_database(seed=0, size=20)
        oracle = DistanceMatrixOracle(db, StarDistance())
        assert np.allclose(oracle.matrix, oracle.matrix.T)

    def test_distance_lookup(self):
        db = random_database(seed=1, size=15)
        dist = StarDistance()
        oracle = DistanceMatrixOracle(db, dist)
        assert oracle.distance(3, 7) == pytest.approx(dist(db[3], db[7]))

    def test_range_query_matches_scan(self):
        db = random_database(seed=2, size=25)
        dist = StarDistance()
        oracle = DistanceMatrixOracle(db, dist)
        theta = 5.0
        expected = sorted(
            j for j in range(25) if dist(db[4], db[j]) <= theta + 1e-9
        )
        assert sorted(int(i) for i in oracle.range_query(4, theta)) == expected

    def test_greedy_identical_to_baseline(self):
        db = random_database(seed=3, size=40)
        dist = StarDistance()
        q = quartile_relevance(db, quantile=0.3)
        oracle = DistanceMatrixOracle(db, dist)
        theta, k = 5.0, 5
        assert oracle.greedy(q, theta, k).answer == baseline_greedy(
            db, dist, q, theta, k
        ).answer

    def test_memory_is_n_squared_doubles(self):
        db = random_database(seed=4, size=10)
        oracle = DistanceMatrixOracle(db, StarDistance())
        assert oracle.memory_bytes() == 10 * 10 * 8

    def test_build_time_recorded(self):
        db = random_database(seed=5, size=10)
        oracle = DistanceMatrixOracle(db, StarDistance())
        assert oracle.build_seconds > 0


class TestTraditionalTopK:
    def test_orders_by_score_desc(self):
        graphs = [path_graph(["C"]) for _ in range(5)]
        db = GraphDatabase(graphs, [[1.0], [5.0], [3.0], [5.0], [2.0]])
        q = WeightedScoreThreshold([1.0], threshold=0.0)
        top3 = traditional_top_k(db, q, 3)
        assert top3 == [1, 3, 2]  # ties by smaller id

    def test_k_larger_than_database(self):
        graphs = [path_graph(["C"]) for _ in range(3)]
        db = GraphDatabase(graphs, [[1.0], [2.0], [3.0]])
        q = WeightedScoreThreshold([1.0], threshold=0.0)
        assert len(traditional_top_k(db, q, 10)) == 3

    def test_validation(self):
        db = random_database(seed=6, size=5)
        q = quartile_relevance(db, quantile=0.5)
        with pytest.raises(ValueError):
            traditional_top_k(db, q, 0)


class TestRedundancy:
    def test_identical_answers_have_zero_distances(self):
        graphs = [path_graph(["C", "C"]) for _ in range(4)]
        db = GraphDatabase(graphs, np.zeros(4))
        stats = answer_set_redundancy(db, StarDistance(), [0, 1, 2])
        assert stats["mean"] == 0.0
        assert stats["pairs"] == 3

    def test_single_answer_trivial(self):
        db = random_database(seed=7, size=5)
        stats = answer_set_redundancy(db, StarDistance(), [0])
        assert stats["pairs"] == 0

    def test_diverse_answers_have_positive_mean(self):
        db = random_database(seed=8, size=10)
        stats = answer_set_redundancy(db, StarDistance(), [0, 3, 7])
        assert stats["mean"] > 0
        assert stats["min"] <= stats["mean"] <= stats["max"]

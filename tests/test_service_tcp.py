"""TCP transport tests for the query service (repro.service.server).

``test_service.py`` covers one happy-path round trip; this file exercises
the socket transport as a transport: many sequential requests on one
connection, concurrent clients against the threading server, oversized
frames shed with ``invalid_request`` before admission (connection stays
usable), abrupt client disconnects mid-response, and a clean
``shutdown`` + ``drain`` with connections still open.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex
from repro.service import QueryService, ServiceConfig
from repro.service.server import serve_tcp
from tests.conftest import random_database

BUILD = dict(num_vantage_points=5, branching=4, seed=7)


@pytest.fixture(scope="module")
def tcp_db():
    return random_database(seed=21, size=30)


@pytest.fixture(scope="module")
def tcp_index(tcp_db):
    return NBIndex.build(tcp_db, StarDistance(), **BUILD)


@pytest.fixture()
def tcp_server(tcp_index):
    """A running service + TCP server on an ephemeral port; always torn
    down, even when the test body raises."""
    service = QueryService(
        tcp_index, config=ServiceConfig(max_request_bytes=2048)
    ).start()
    server = serve_tcp(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, service
    finally:
        server.shutdown()
        server.server_close()
        service.drain()


def _request(address, payload, timeout=10.0):
    """One connection, one request line, one response line."""
    with socket.create_connection(address, timeout=timeout) as sock:
        stream = sock.makefile("rw")
        stream.write(json.dumps(payload) + "\n")
        stream.flush()
        return json.loads(stream.readline())


class TestTCPTransport:
    def test_sequential_requests_share_one_connection(
        self, tcp_server, tcp_db, tcp_index
    ):
        server, _ = tcp_server
        want = tcp_index.query(quartile_relevance(tcp_db), 8.0, 3)
        with socket.create_connection(server.server_address, timeout=10) as sock:
            stream = sock.makefile("rw")
            for request_id in range(3):
                stream.write(json.dumps(
                    {"id": request_id, "theta": 8.0, "k": 3}
                ) + "\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] and response["id"] == request_id
                assert response["result"]["answer"] == want.answer
            stream.write(json.dumps({"id": 99, "op": "ping"}) + "\n")
            stream.flush()
            pong = json.loads(stream.readline())
            assert pong["result"]["pong"] is True

    def test_concurrent_clients_each_get_their_answer(
        self, tcp_server, tcp_db, tcp_index
    ):
        server, _ = tcp_server
        want = tcp_index.query(quartile_relevance(tcp_db), 8.0, 2)
        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def client(client_id: int) -> None:
            try:
                results[client_id] = _request(
                    server.server_address,
                    {"id": client_id, "theta": 8.0, "k": 2},
                )
            except Exception as error:  # surfaced in the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        assert sorted(results) == list(range(6))
        for client_id, response in results.items():
            assert response["ok"], response
            assert response["id"] == client_id
            assert response["result"]["answer"] == want.answer

    def test_oversized_frame_is_shed_and_connection_survives(self, tcp_server):
        server, service = tcp_server
        padding = "x" * (service.config.max_request_bytes + 1)
        with socket.create_connection(server.server_address, timeout=10) as sock:
            stream = sock.makefile("rw")
            stream.write(json.dumps(
                {"id": 1, "theta": 8.0, "k": 2, "pad": padding}
            ) + "\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "invalid_request"
            assert "exceeds" in response["error"]["message"]
            # The oversized frame never reached admission...
            assert service.admission.stats()["admitted"] == 0
            # ...and the connection still serves the next request.
            stream.write(json.dumps({"id": 2, "op": "ping"}) + "\n")
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True

    def test_client_disconnect_mid_stream_does_not_kill_the_server(
        self, tcp_server
    ):
        server, _ = tcp_server
        # Write a request and slam the connection shut without reading the
        # response: the handler's write hits a dead socket and must give
        # up quietly rather than take a worker thread down.
        sock = socket.create_connection(server.server_address, timeout=10)
        sock.sendall(
            (json.dumps({"id": 1, "theta": 8.0, "k": 2}) + "\n").encode()
        )
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            __import__("struct").pack("ii", 1, 0),  # RST on close
        )
        sock.close()
        # The server keeps answering new clients afterwards.
        response = _request(server.server_address, {"id": 2, "op": "ping"})
        assert response["ok"] is True

    def test_shutdown_with_open_connection_drains_clean(self, tcp_index):
        service = QueryService(tcp_index).start()
        server = serve_tcp(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        # Hold an idle connection open across the shutdown.
        idle = socket.create_connection(server.server_address, timeout=10)
        try:
            response = _request(
                server.server_address, {"id": 1, "theta": 8.0, "k": 2}
            )
            assert response["ok"]
            server.shutdown()
            server.server_close()
            report = service.drain()
            assert report["clean"] is True
            assert report["cancelled"] == 0
            assert service.admission.completed >= 1
        finally:
            idle.close()

"""Synthetic dataset generators: determinism, statistics, and the geometric
properties the experiments depend on (DESIGN.md §3)."""

import numpy as np
import pytest

from repro.datasets import (
    amazon_like,
    calibrate_theta,
    dblp_like,
    dud_like,
    extract_two_hop,
    load,
    sample_block_model,
)
from repro.datasets.dud import NUM_TARGETS, _make_molecule, _make_outlier
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.utils.rng import ensure_rng


class TestDeterminism:
    @pytest.mark.parametrize("generator", [dud_like, dblp_like, amazon_like])
    def test_same_seed_same_database(self, generator):
        a = generator(num_graphs=30, seed=42)
        b = generator(num_graphs=30, seed=42)
        assert np.allclose(a.features, b.features)
        for g1, g2 in zip(a, b):
            assert g1 == g2

    @pytest.mark.parametrize("generator", [dud_like, dblp_like, amazon_like])
    def test_different_seed_differs(self, generator):
        a = generator(num_graphs=30, seed=1)
        b = generator(num_graphs=30, seed=2)
        assert any(g1 != g2 for g1, g2 in zip(a, b))


class TestDudGeometry:
    def test_feature_dimensionality(self):
        db = dud_like(num_graphs=20, seed=0)
        assert db.num_features == NUM_TARGETS

    def test_sizes_in_molecular_range(self):
        db = dud_like(num_graphs=50, seed=1)
        sizes = [g.num_nodes for g in db]
        assert 10 <= np.mean(sizes) <= 40

    def test_within_family_tighter_than_cross_family(self):
        rng = ensure_rng(0)
        dist = StarDistance()
        fam_a = [_make_molecule(0, rng) for _ in range(8)]
        fam_b = [_make_molecule(3, rng) for _ in range(8)]
        within = [
            dist(fam_a[i], fam_a[j])
            for i in range(8) for j in range(i + 1, 8)
        ]
        cross = [dist(a, b) for a in fam_a for b in fam_b]
        assert np.mean(within) < np.mean(cross)
        assert max(within) < np.mean(cross)

    def test_feature_structure_correlation(self):
        """Relevant molecules should be structurally closer to each other
        than random pairs are — the correlation the DUD experiments rely on."""
        db = dud_like(num_graphs=80, seed=2, outlier_fraction=0.0)
        dist = StarDistance()
        q = quartile_relevance(db, dims=[0, 1], quantile=0.75)
        relevant = [int(i) for i in db.relevant_indices(q)]
        rng = np.random.default_rng(0)
        rel_sample = [
            dist(db[relevant[int(rng.integers(len(relevant)))]],
                 db[relevant[int(rng.integers(len(relevant)))]])
            for _ in range(200)
        ]
        all_sample = [
            dist(db[int(rng.integers(80))], db[int(rng.integers(80))])
            for _ in range(200)
        ]
        assert np.mean(rel_sample) < np.mean(all_sample)

    def test_outliers_are_far_from_families(self):
        rng = ensure_rng(3)
        dist = StarDistance()
        outlier = _make_outlier(rng)
        family = [_make_molecule(0, rng) for _ in range(6)]
        to_family = [dist(outlier, m) for m in family]
        within = [
            dist(family[i], family[j])
            for i in range(6) for j in range(i + 1, 6)
        ]
        assert min(to_family) > np.mean(within)

    def test_validation(self):
        with pytest.raises(ValueError):
            dud_like(num_graphs=0)
        with pytest.raises(ValueError):
            dud_like(num_graphs=5, outlier_fraction=1.5)


class TestBlockModel:
    def test_community_assignment(self):
        network = sample_block_model([10, 20], 0.5, 0.01, rng=0)
        assert network.num_nodes == 30
        assert (network.community[:10] == 0).all()
        assert (network.community[10:] == 1).all()

    def test_intra_denser_than_inter(self):
        network = sample_block_model([40, 40], 0.3, 0.01, rng=1)
        intra = inter = 0
        for u in range(80):
            for v in network.adjacency[u]:
                if v > u:
                    if network.community[u] == network.community[v]:
                        intra += 1
                    else:
                        inter += 1
        assert intra > inter

    def test_edge_count_near_expectation(self):
        network = sample_block_model([50, 50], 0.2, 0.0, rng=2)
        expected = 2 * 0.2 * (50 * 49 / 2)
        assert network.num_edges == pytest.approx(expected, rel=0.25)

    def test_adjacency_symmetric(self):
        network = sample_block_model([20, 20], 0.3, 0.05, rng=3)
        for u in range(40):
            for v in network.adjacency[u]:
                assert u in network.adjacency[v]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            sample_block_model([10], 0.1, 0.5, rng=0)  # inter > intra


class TestTwoHopExtraction:
    def test_contains_center_and_neighbors(self):
        network = sample_block_model([30], 0.3, 0.0, rng=4)
        center = max(range(30), key=network.degree)
        graph = extract_two_hop(network, center, max_nodes=100, label_prefix="c", rng=0)
        assert graph.num_nodes >= 1 + network.degree(center)

    def test_respects_max_nodes(self):
        network = sample_block_model([60], 0.4, 0.0, rng=5)
        center = max(range(60), key=network.degree)
        graph = extract_two_hop(network, center, max_nodes=10, label_prefix="c", rng=0)
        # 1-hop neighbors are always kept, so the cap is soft there; but the
        # 2-hop set must be pruned.
        assert graph.num_nodes <= max(10, 1 + network.degree(center))

    def test_labels_are_communities(self):
        network = sample_block_model([10, 10], 0.5, 0.1, rng=6)
        graph = extract_two_hop(network, 0, max_nodes=50, label_prefix="c", rng=0)
        assert all(label.startswith("c") for label in graph.node_labels)


class TestRelativeSpreads:
    def test_amazon_more_spread_than_dblp(self):
        """The paper's key geometric contrast (Figs. 5(d) vs 5(e)): Amazon's
        distances are relatively more dispersed, motivating its larger θ."""
        dist = StarDistance()
        rng = np.random.default_rng(0)

        def cv(db):
            vals = []
            for _ in range(250):
                i, j = int(rng.integers(len(db))), int(rng.integers(len(db)))
                if i != j:
                    vals.append(dist(db[i], db[j]))
            vals = np.asarray(vals)
            return vals.std() / vals.mean()

        dblp = dblp_like(num_graphs=80, seed=5)
        amazon = amazon_like(num_graphs=80, seed=5)
        assert cv(amazon) > cv(dblp)


class TestRegistry:
    def test_load_returns_calibrated_spec(self):
        spec = load("dud", StarDistance(), num_graphs=60, seed=3)
        assert spec.name == "dud"
        assert spec.theta > 0
        assert len(spec.ladder) >= 1
        assert spec.summary()["num_graphs"] == 60

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load("imaginary", StarDistance())

    def test_calibrate_theta_monotone_in_quantile(self):
        db = dud_like(num_graphs=60, seed=4)
        dist = StarDistance()
        low = calibrate_theta(db, dist, quantile=0.05, rng=0)
        high = calibrate_theta(db, dist, quantile=0.5, rng=0)
        assert low <= high

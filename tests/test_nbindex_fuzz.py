"""Hypothesis fuzzing of the full NB-Index pipeline on tiny databases."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ged import StarDistance
from repro.graphs import GraphDatabase, quartile_relevance
from repro.index import NBIndex
from repro.index.errors import OffLadderThetaError
from tests.conftest import random_connected_graph
from tests.test_nbindex import assert_valid_greedy_trajectory


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=6),
    st.floats(min_value=1.0, max_value=15.0),
    st.integers(min_value=1, max_value=5),
)
def test_random_databases_yield_valid_trajectories(seed, branching, theta, k):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(10, 30))
    graphs = [
        random_connected_graph(rng, int(rng.integers(2, 7)))
        for _ in range(size)
    ]
    db = GraphDatabase(graphs, rng.random((size, 2)))
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.25)
    index = NBIndex.build(
        db, dist, num_vantage_points=int(rng.integers(1, 6)),
        branching=branching, seed=seed,
    )
    try:
        result = index.query(q, theta, k)
    except OffLadderThetaError:
        # The derived ladder is distance-sample dependent; a drawn theta
        # above its top rung is refused by contract, not answered.
        assert theta > max(index.ladder.values)
        return
    assert_valid_greedy_trajectory(db, dist, q, theta, result)
    # Invariants that hold regardless of the draw:
    assert len(result.answer) == len(set(result.answer))
    assert len(result.answer) <= min(k, result.num_relevant)
    assert all(g >= 0 for g in result.gains)

"""repro.obs: registry primitives, span nesting, pool-worker merging."""

import json
import threading

import pytest

import repro
from repro import obs
from repro.obs import MetricsRegistry, NullRegistry, NullTracer, Tracer


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.counter("a", 4)
        registry.counter("b", 2)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 5, "b": 2}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g", 1)
        registry.gauge("g", 7)
        assert registry.snapshot()["gauges"]["g"] == 7

    def test_timer_stream_summary(self):
        registry = MetricsRegistry()
        registry.observe("t", 0.5)
        registry.observe("t", 1.5)
        entry = registry.snapshot()["timers"]["t"]
        assert entry["count"] == 2
        assert entry["total"] == pytest.approx(2.0)
        assert entry["min"] == pytest.approx(0.5)
        assert entry["max"] == pytest.approx(1.5)
        assert entry["mean"] == pytest.approx(1.0)

    def test_timer_context_manager_records(self):
        registry = MetricsRegistry()
        with registry.timer("block"):
            pass
        entry = registry.snapshot()["timers"]["block"]
        assert entry["count"] == 1
        assert entry["total"] >= 0.0

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        for value in (1, 3, 10, 999):
            registry.histogram("h", value, buckets=(2, 8))
        entry = registry.snapshot()["histograms"]["h"]
        assert entry["buckets"] == [2.0, 8.0]
        assert entry["counts"] == [1, 1, 2]  # ≤2: 1 | ≤8: 3 | overflow: 10, 999
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(1013.0)

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c", 2)
        registry.gauge("g", 1.5)
        registry.observe("t", 0.1)
        registry.histogram("h", 3)
        json.dumps(registry.snapshot())  # must not raise

    def test_merge_adds_counters_and_timers(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.counter("c", 1)
        theirs.counter("c", 2)
        theirs.counter("only_theirs", 5)
        ours.observe("t", 1.0)
        theirs.observe("t", 3.0)
        theirs.histogram("h", 4)
        ours.histogram("h", 5)
        ours.merge(theirs.snapshot())
        snap = ours.snapshot()
        assert snap["counters"] == {"c": 3, "only_theirs": 5}
        assert snap["timers"]["t"]["count"] == 2
        assert snap["timers"]["t"]["max"] == pytest.approx(3.0)
        assert snap["histograms"]["h"]["count"] == 2

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.reset()
        assert registry.snapshot() == NullRegistry().snapshot()

    def test_thread_safety_exact_totals(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(2000):
                registry.counter("hits")
                registry.observe("t", 0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 16000
        assert snap["timers"]["t"]["count"] == 16000


class TestNullImplementations:
    def test_null_registry_records_nothing(self):
        registry = NullRegistry()
        registry.counter("c", 10)
        registry.gauge("g", 1)
        registry.observe("t", 1.0)
        registry.histogram("h", 1)
        with registry.timer("t2"):
            pass
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
        }
        assert not registry.enabled

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("s", a=1) as sp:
            sp.set(b=2)
        assert tracer.snapshot() == []


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", n=3):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b") as sp:
                sp.set(late=True)
        roots = tracer.snapshot()
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "root"
        assert root["attrs"] == {"n": 3}
        assert [c["name"] for c in root["children"]] == ["child_a", "child_b"]
        assert root["children"][0]["children"][0]["name"] == "grandchild"
        assert root["children"][1]["attrs"] == {"late": True}
        assert root["seconds"] >= root["children"][0]["seconds"]

    def test_exception_stamps_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad")
        record = tracer.snapshot()[0]
        assert "ValueError" in record["attrs"]["error"]

    def test_attach_grafts_under_open_span(self):
        tracer = Tracer()
        foreign = [{"name": "worker.chunk", "seconds": 0.1,
                    "attrs": {}, "children": []}]
        with tracer.span("parent"):
            tracer.attach(foreign, worker_pid=42)
        root = tracer.snapshot()[0]
        assert root["children"][0]["name"] == "worker.chunk"
        assert root["children"][0]["attrs"]["worker_pid"] == 42

    def test_attach_without_open_span_collects_roots(self):
        tracer = Tracer()
        tracer.attach([{"name": "orphan", "seconds": 0.0,
                        "attrs": {}, "children": []}])
        assert tracer.snapshot()[0]["name"] == "orphan"

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label):
            with tracer.span(label):
                barrier.wait()  # both spans open simultaneously

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        names = {record["name"] for record in tracer.snapshot()}
        assert names == {"t0", "t1"}  # roots, not nested into each other


class TestModuleSwitch:
    def test_disabled_by_default_helpers_are_noops(self):
        assert not obs.enabled()
        obs.counter("c", 3)
        with obs.span("s"):
            pass
        assert obs.get_registry().snapshot()["counters"] == {}

    def test_enable_records_and_disable_drops(self):
        obs.enable()
        assert obs.enabled()
        obs.counter("c", 3)
        assert obs.get_registry().snapshot()["counters"] == {"c": 3}
        obs.disable()
        assert not obs.enabled()
        assert obs.get_registry().snapshot()["counters"] == {}

    def test_enable_is_idempotent_unless_fresh(self):
        registry = obs.enable()
        obs.counter("kept")
        assert obs.enable() is registry
        assert obs.get_registry().snapshot()["counters"] == {"kept": 1}
        fresh = obs.enable(fresh=True)
        assert fresh is not registry
        assert fresh.snapshot()["counters"] == {}

    def test_observe_context_restores_previous_state(self):
        assert not obs.enabled()
        with repro.observe() as run:
            assert obs.enabled()
            obs.counter("inside", 2)
            assert run.stats()["counters"]["inside"] == 2
        assert not obs.enabled()
        # The handle keeps its registry after exit.
        assert run.stats()["counters"]["inside"] == 2

    def test_observe_document_schema(self):
        with repro.observe() as run:
            obs.counter("c")
            with obs.span("s"):
                pass
        doc = run.document()
        assert doc["schema"] == "repro.obs/v1"
        assert doc["metrics"]["counters"] == {"c": 1}
        assert [s["name"] for s in doc["spans"]] == ["s"]

    def test_maybe_enable_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert not obs.maybe_enable_from_env()
        assert not obs.enabled()
        monkeypatch.setenv("REPRO_OBS", "1")
        assert obs.maybe_enable_from_env()
        assert obs.enabled()

    def test_export_and_merge_state_roundtrip(self):
        obs.enable()
        obs.counter("c", 2)
        with obs.span("chunk"):
            pass
        state = obs.export_state(reset_after=True)
        assert obs.get_registry().snapshot()["counters"] == {}
        with obs.span("parent"):
            obs.merge_state(state, worker=True)
        snap = obs.get_registry().snapshot()
        assert snap["counters"] == {"c": 2}
        parent = obs.get_tracer().snapshot()[0]
        assert parent["children"][0]["name"] == "chunk"
        assert parent["children"][0]["attrs"]["worker"] is True


class TestQueryCounters:
    def test_counters_reproduce_query_stats(self):
        """One instrumented query reports the bench-script work counts."""
        from tests.conftest import random_database

        from repro.ged.star import StarDistance
        from repro.graphs import quartile_relevance
        from repro.index.nbindex import NBIndex

        db = random_database(seed=7, size=30)
        index = NBIndex.build(
            db, StarDistance(), num_vantage_points=4, branching=3, seed=0
        )
        with repro.observe() as run:
            result = index.query(quartile_relevance(db), 6.0, 3)
        counters = run.stats()["counters"]
        stats = result.stats
        assert counters["query.count"] == 1
        assert counters["query.distance_calls"] == stats.distance_calls
        assert (counters.get("query.candidates_generated", 0)
                == stats.candidates_generated)
        assert (counters.get("query.candidate_verifications", 0)
                == stats.candidate_verifications)
        assert counters.get("query.nodes_popped", 0) == stats.nodes_popped
        assert (counters.get("query.leaves_evaluated", 0)
                == stats.leaves_evaluated)
        assert (counters.get("query.pruned_subtrees", 0)
                == stats.pruned_subtrees)
        assert (counters.get("query.batch_decrements", 0)
                == stats.batch_decrements)


class TestPoolWorkerMerging:
    def test_pool_metrics_and_spans_aggregate_in_parent(self):
        from tests.conftest import random_database

        from repro.engine import DistanceEngine
        from repro.ged.star import StarDistance

        db = random_database(seed=5, size=10)
        with repro.observe() as run:
            with DistanceEngine(
                StarDistance(), workers=2, graphs=db.graphs,
                parallel_threshold=1, respect_cpu_count=False,
            ) as engine:
                engine.one_to_many(db.graphs[0], list(range(1, 10)))
        counters = run.stats()["counters"]
        # Worker-side counters crossed the process boundary and add up.
        assert counters["engine.worker.pairs"] == 9
        assert counters["engine.worker.chunks"] >= 1
        assert counters["ged.star.batch_pairs"] == 9
        # Worker chunk spans are nested under the dispatching pool span.
        pool_spans = [s for s in run.spans() if s["name"] == "engine.pool.map"]
        assert pool_spans
        chunk_names = [c["name"] for s in pool_spans for c in s["children"]]
        assert "engine.worker.chunk" in chunk_names
        chunks = [c for s in pool_spans for c in s["children"]
                  if c["name"] == "engine.worker.chunk"]
        assert all(c["attrs"].get("worker") for c in chunks)

    def test_serial_engine_counts_match_pool_counts(self):
        from tests.conftest import random_database

        from repro.engine import DistanceEngine
        from repro.ged.star import StarDistance

        db = random_database(seed=5, size=10)
        with repro.observe() as serial_run:
            with DistanceEngine(StarDistance(), workers=1,
                                graphs=db.graphs) as engine:
                serial = engine.one_to_many(db.graphs[0], list(range(1, 10)))
        with repro.observe() as pool_run:
            with DistanceEngine(
                StarDistance(), workers=2, graphs=db.graphs,
                parallel_threshold=1, respect_cpu_count=False,
            ) as engine:
                pooled = engine.one_to_many(db.graphs[0], list(range(1, 10)))
        assert list(serial) == list(pooled)
        serial_pairs = serial_run.stats()["counters"]["ged.star.batch_pairs"]
        pool_pairs = pool_run.stats()["counters"]["ged.star.batch_pairs"]
        assert serial_pairs == pool_pairs == 9

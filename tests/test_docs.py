"""Documentation artifacts: presence, API-reference generator."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


class TestDocsPresence:
    def test_core_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "CHANGELOG.md", "docs/theory.md", "docs/usage.md",
                     "docs/internals.md"):
            assert (ROOT / name).exists(), name

    def test_design_lists_every_benchmark_file(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            stem = bench.name.replace("bench_", "").replace(".py", "")
            # Every benchmark's topic appears in the design document.
            token = stem.split("_")[0]
            assert token in design, bench.name


class TestApiReferenceGenerator:
    def test_generator_runs_and_covers_modules(self):
        completed = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "gen_api_docs.py")],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        api = (ROOT / "docs" / "api.md").read_text()
        for module in ("repro.index.nbindex", "repro.ged.star",
                       "repro.core.greedy", "repro.baselines.disc",
                       "repro.datasets.dud", "repro.metricspace.vectors"):
            assert f"## `{module}`" in api, module
        assert "NBIndex" in api


class TestReportBuilder:
    def test_builds_report_from_artifacts(self, tmp_path, monkeypatch):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "build_report", ROOT / "scripts" / "build_report.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig2a_disc_growth_dud.txt").write_text("== fig2a ==\nrows\n")
        (results / "custom_extra.txt").write_text("== custom ==\n")
        monkeypatch.setattr(module, "RESULTS", results)
        assert module.main() == 0
        report = (results / "REPORT.md").read_text()
        assert "Fig. 2(a)" in report
        assert "== fig2a ==" in report
        assert "Other artifacts" in report

    def test_fails_cleanly_without_results(self, tmp_path, monkeypatch, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "build_report2", ROOT / "scripts" / "build_report.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "RESULTS", tmp_path / "missing")
        assert module.main() == 1

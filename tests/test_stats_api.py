"""The unified public stats/query API and its deprecation shims."""

import warnings

import numpy as np
import pytest

import repro
from repro import Statable
from repro.baselines.ctree import CTree
from repro.baselines.mtree import MTree
from repro.ged.metric import CachingDistance, CountingDistance
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.nbindex import NBIndex
from tests.conftest import random_database


@pytest.fixture(scope="module")
def db():
    return random_database(seed=4, size=25)


@pytest.fixture(scope="module")
def index(db):
    return NBIndex.build(
        db, StarDistance(), num_vantage_points=4, branching=3, seed=0
    )


class TestStatableProtocol:
    def test_every_stats_surface_is_statable(self, db, index):
        counting = CountingDistance(StarDistance())
        surfaces = [
            index,
            index.engine,
            counting,
            CachingDistance(counting),
            MTree(db.graphs, StarDistance(), capacity=4, seed=0),
            CTree(db.graphs, StarDistance(), capacity=4, seed=0),
        ]
        for surface in surfaces:
            assert isinstance(surface, Statable), surface
            stats = surface.stats()
            assert isinstance(stats, dict) and stats

    def test_query_stats_is_statable(self, db, index):
        result = index.query(quartile_relevance(db), 6.0, 2)
        assert isinstance(result.stats, Statable)
        stats = result.stats.stats()
        assert stats["distance_calls"] >= 0
        assert "total_seconds" in stats

    def test_stats_are_json_safe(self, index):
        import json

        json.dumps(index.stats())

    def test_nbindex_stats_shape(self, db, index):
        stats = index.stats()
        assert stats["num_graphs"] == len(db)
        assert stats["num_vantage_points"] == 4
        assert stats["branching"] == 3
        assert stats["tree_nodes"] >= 1
        assert stats["distance_calls"] > 0
        assert stats["memory_bytes"] > 0
        assert "engine" in stats

    def test_collect_stats_nests_and_skips_none(self, index):
        from repro.obs import collect_stats

        document = collect_stats(index=index, engine=index.engine, absent=None)
        assert set(document) == {"index", "engine"}
        assert document["index"]["distance_calls"] > 0


class TestDeprecationShims:
    def test_nbindex_distance_calls_property_warns(self, index):
        with pytest.warns(DeprecationWarning, match="distance_calls"):
            value = index.distance_calls
        assert value == index.stats()["distance_calls"]

    def test_nbindex_memory_bytes_method_warns(self, index):
        with pytest.warns(DeprecationWarning, match="memory_bytes"):
            value = index.memory_bytes()
        assert value == index.stats()["memory_bytes"]

    def test_build_rng_alias_warns_and_matches_seed(self, db):
        with pytest.warns(DeprecationWarning, match="rng"):
            via_rng = NBIndex.build(
                db, StarDistance(), num_vantage_points=3, branching=3, rng=9
            )
        via_seed = NBIndex.build(
            db, StarDistance(), num_vantage_points=3, branching=3, seed=9
        )
        assert np.array_equal(
            via_rng.embedding.coords, via_seed.embedding.coords
        )

    def test_build_rejects_both_seed_and_rng(self, db):
        with pytest.warns(DeprecationWarning), pytest.raises(TypeError):
            NBIndex.build(db, StarDistance(), seed=1, rng=2)

    @pytest.mark.parametrize("tree_cls", [MTree, CTree])
    def test_tree_rng_alias_warns(self, db, tree_cls):
        with pytest.warns(DeprecationWarning, match="rng"):
            tree_cls(db.graphs, StarDistance(), capacity=4, rng=0)

    def test_facade_rng_alias_warns(self, db):
        with pytest.warns(DeprecationWarning, match="rng"):
            repro.TopKRepresentativeQuery(db, rng=3)

    def test_greedy_seed_free_paths_do_not_warn(self, db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.baseline_greedy(
                db, StarDistance(), quartile_relevance(db), 6.0, 2
            )
            repro.lazy_greedy(
                db, StarDistance(), quartile_relevance(db), 6.0, 2
            )


class TestKeywordOnlySignatures:
    def test_build_rejects_positional_hyperparams(self, db):
        with pytest.raises(TypeError):
            NBIndex.build(db, StarDistance(), 5)

    @pytest.mark.parametrize("tree_cls", [MTree, CTree])
    def test_trees_reject_positional_capacity(self, db, tree_cls):
        with pytest.raises(TypeError):
            tree_cls(db.graphs, StarDistance(), 4)

    def test_greedy_rejects_positional_options(self, db):
        with pytest.raises(TypeError):
            repro.baseline_greedy(
                db, StarDistance(), quartile_relevance(db), 6.0, 2, None
            )

    def test_query_rejects_unknown_kwargs(self, db, index):
        with pytest.raises(TypeError, match="unexpected keyword"):
            index.query(quartile_relevance(db), 6.0, 2, stop_on_zero=True)

    def test_query_accepts_known_kwargs(self, db, index):
        result = index.query(
            quartile_relevance(db), 6.0, 2, stop_on_zero_gain=True
        )
        assert result.answer


class TestFacadeFunctions:
    def test_observe_reexported(self):
        with repro.observe() as run:
            repro.obs.counter("c")
        assert run.stats()["counters"]["c"] == 1

    def test_open_database_roundtrip(self, db, tmp_path):
        from repro.graphs import save_database

        path = tmp_path / "db.jsonl"
        save_database(db, path)
        loaded = repro.open_database(path)
        assert len(loaded) == len(db)
        assert loaded[0].num_nodes == db[0].num_nodes

    def test_load_index_defaults_to_star_distance(self, db, index, tmp_path):
        from repro.graphs import save_database
        from repro.index import save_index

        db_path, index_path = tmp_path / "db.jsonl", tmp_path / "index.npz"
        save_database(db, db_path)
        save_index(index, index_path)
        loaded_db = repro.open_database(db_path)
        loaded = repro.load_index(index_path, loaded_db)
        q = quartile_relevance(db)
        assert loaded.query(q, 6.0, 2).answer == index.query(q, 6.0, 2).answer

"""Resilience layer: deadline budgets and the exact→beam→bipartite
degradation ladder, pool fault tolerance (respawn/backoff/serial
fallback), checkpointed bit-identical builds, and the checksummed
persistence container — all driven by deterministic fault injection
(:mod:`repro.resilience.faults`)."""

import io
import multiprocessing

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.engine import DistanceEngine
from repro.engine import pool as pool_module
from repro.ged import ExactGED, StarDistance
from repro.graphs import GraphDatabase, quartile_relevance
from repro.graphs.io import load_database, save_database
from repro.index import NBIndex
from repro.index import persistence
from repro.index.persistence import load_index, save_index
from repro.resilience import (
    BudgetExceeded,
    CheckpointError,
    CorruptIndexError,
    DatabaseMismatchError,
    Deadline,
    IndexFormatError,
    PersistenceError,
    RetryPolicy,
    atomic_write,
    current_deadline,
    deadline_scope,
    faults,
    read_checksummed,
    write_checksummed,
)
from repro.resilience.checkpoint import BuildCheckpoint
from repro.resilience.faults import FaultPlan, SimulatedCrash
from tests.conftest import random_database


def _fast_policy(max_attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=max_attempts, base_delay=0.01, max_delay=0.02, jitter=0.0
    )


def _engine(distance, db, **kwargs):
    params = dict(
        workers=2,
        respect_cpu_count=False,
        parallel_threshold=1,
        chunk_size=4,
        graphs=db.graphs,
        retry_policy=_fast_policy(),
    )
    params.update(kwargs)
    return DistanceEngine(distance, **params)


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_requires_at_least_one_budget(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline()

    def test_rejects_negative_time_and_zero_expansions(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)
        with pytest.raises(ValueError):
            Deadline(expansion_limit=0)

    def test_time_budget_expiry(self):
        assert Deadline(0.0).expired()
        generous = Deadline(60.0)
        assert not generous.expired()
        assert generous.remaining() > 0

    def test_expansion_only_deadline_never_times_out(self):
        deadline = Deadline(expansion_limit=5)
        assert deadline.remaining() is None
        assert not deadline.expired()

    def test_after_ms(self):
        deadline = Deadline.after_ms(50)
        assert deadline.seconds == pytest.approx(0.05)

    def test_state_roundtrip_shares_expiry(self):
        deadline = Deadline(60.0, expansion_limit=7)
        clone = Deadline.from_state(deadline.state())
        assert clone.expansion_limit == 7
        assert clone.remaining() == pytest.approx(deadline.remaining(), abs=0.05)
        assert not clone.degraded

    def test_degradation_accounting(self):
        deadline = Deadline(60.0)
        assert not deadline.degraded
        deadline.record_degradation("ged.exact.beam")
        deadline.record_degradation("ged.exact.beam")
        deadline.merge_degradations({"ged.exact.bipartite": 3})
        assert deadline.degraded
        assert deadline.degradations == {
            "ged.exact.beam": 2,
            "ged.exact.bipartite": 3,
        }

    def test_scope_nesting_and_none_passthrough(self):
        outer = Deadline(60.0)
        inner = Deadline(30.0)
        assert current_deadline() is None
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(None):
                assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_scope_is_thread_local(self):
        """Service worker threads must not see each other's ambient
        deadlines — the stack is per-thread."""
        import threading

        outer = Deadline(60.0)
        seen = []

        def probe():
            seen.append(current_deadline())

        with deadline_scope(outer):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(5.0)
            assert current_deadline() is outer
        assert seen == [None]


class TestDeadlineProperties:
    """Property tests for the budget arithmetic: ``remaining()`` is never
    negative no matter how stale the deadline, and ``from_timeout_ms``
    agrees with the seconds constructor."""

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_remaining_never_negative(self, seconds):
        deadline = Deadline(seconds)
        assert deadline.remaining() >= 0.0
        # An already-expired deadline clamps instead of going negative.
        expired = Deadline(0.0)
        assert expired.expired()
        assert expired.remaining() == 0.0

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_from_timeout_ms_matches_seconds(self, milliseconds):
        deadline = Deadline.from_timeout_ms(milliseconds)
        assert deadline.seconds == pytest.approx(milliseconds / 1000.0)
        assert Deadline.after_ms(milliseconds).seconds == deadline.seconds

    @given(st.floats(max_value=-1e-9, min_value=-1e6, allow_nan=False))
    def test_from_timeout_ms_rejects_negative(self, milliseconds):
        with pytest.raises(ValueError):
            Deadline.from_timeout_ms(milliseconds)

    @given(st.floats(min_value=0.0, max_value=0.05, allow_nan=False))
    def test_expired_iff_remaining_exhausted(self, seconds):
        deadline = Deadline(seconds)
        # Whatever the timing, the two views of the budget must agree.
        for _ in range(3):
            if deadline.expired():
                assert deadline.remaining() == 0.0
            else:
                assert deadline.remaining() >= 0.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_exponential_capped_jittered_delay(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.25)
        for attempt, expected in [(0, 0.1), (1, 0.2), (2, 0.4), (5, 0.5)]:
            for _ in range(5):
                delay = policy.delay(attempt)
                assert expected <= delay <= expected * 1.25


# ---------------------------------------------------------------------------
# Degradation ladder (serial exact GED)
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    @pytest.fixture()
    def pair(self):
        db = random_database(seed=5, size=4, min_nodes=4, max_nodes=6)
        return db[0], db[1]

    def test_expansion_budget_degrades_to_beam(self, pair):
        g1, g2 = pair
        exact = ExactGED()(g1, g2)
        with deadline_scope(Deadline(3600.0, expansion_limit=1)) as deadline:
            value = ExactGED()(g1, g2)
        assert deadline.degradations.get("ged.exact.beam", 0) >= 1
        assert "ged.exact.bipartite" not in deadline.degradations
        assert value >= exact - 1e-9  # upper bound

    def test_expired_time_budget_degrades_to_bipartite(self, pair):
        g1, g2 = pair
        exact = ExactGED()(g1, g2)
        with deadline_scope(Deadline(0.0)) as deadline:
            value = ExactGED()(g1, g2)
        assert deadline.degradations.get("ged.exact.bipartite", 0) >= 1
        assert value >= exact - 1e-9

    def test_no_deadline_stays_exact(self, pair):
        g1, g2 = pair
        assert current_deadline() is None
        reference = ExactGED()(g1, g2)
        assert ExactGED()(g1, g2) == pytest.approx(reference)

    def test_generous_budget_stays_exact(self, pair):
        g1, g2 = pair
        exact = ExactGED()(g1, g2)
        with deadline_scope(Deadline(3600.0)) as deadline:
            value = ExactGED()(g1, g2)
        assert value == pytest.approx(exact)
        assert not deadline.degraded

    def test_budget_exceeded_reason(self):
        assert BudgetExceeded("time").reason == "time"
        assert BudgetExceeded("expansions").reason == "expansions"


# ---------------------------------------------------------------------------
# Pool fault tolerance
# ---------------------------------------------------------------------------
class TestPoolFaultTolerance:
    @pytest.fixture()
    def db(self):
        return random_database(seed=2, size=40)

    def test_one_shot_worker_crash_respawns_and_retries(self, db, tmp_path):
        token = tmp_path / "crash-token"
        token.write_text("armed")
        serial = DistanceEngine(StarDistance(), workers=1, graphs=db.graphs)
        expected = serial.one_to_many(0, list(range(1, 30)))

        engine = _engine(StarDistance(), db)
        try:
            with faults.injected(FaultPlan(crash_token=str(token))):
                got = engine.one_to_many(0, list(range(1, 30)))
        finally:
            engine.invalidate_pool()
        np.testing.assert_allclose(got, expected)
        stats = engine.stats()
        assert stats["pool_retries"] == 1
        assert stats["pool_respawns"] == 1
        assert stats["pool_serial_fallbacks"] == 0
        assert not token.exists()  # the dying worker consumed it

    def test_persistent_crashes_fall_back_to_serial(self, db):
        serial = DistanceEngine(StarDistance(), workers=1, graphs=db.graphs)
        expected = serial.one_to_many(0, list(range(1, 20)))

        engine = _engine(StarDistance(), db, retry_policy=_fast_policy(3))
        try:
            with faults.injected(FaultPlan(crash_always=True)):
                got = engine.one_to_many(0, list(range(1, 20)))
        finally:
            engine.invalidate_pool()
        np.testing.assert_allclose(got, expected)
        stats = engine.stats()
        assert stats["pool_retries"] == 3
        assert stats["pool_respawns"] == 2
        assert stats["pool_serial_fallbacks"] == 1

    def test_worker_degradations_merge_into_parent_deadline(self, db):
        small = random_database(seed=9, size=10, min_nodes=3, max_nodes=5)
        engine = _engine(ExactGED(), small)
        try:
            with deadline_scope(Deadline(3600.0, expansion_limit=1)) as deadline:
                values = engine.one_to_many(0, list(range(1, 8)))
        finally:
            engine.invalidate_pool()
        assert len(values) == 7
        # Workers raised BudgetExceeded, degraded to beam, and shipped the
        # counts back across the process boundary.
        assert deadline.degradations.get("ged.exact.beam", 0) >= 1

    def test_fork_unavailable_falls_back_and_logs(self, monkeypatch):
        real_get_context = multiprocessing.get_context

        def no_fork(method=None):
            if method == "fork":
                raise ValueError("cannot find context for 'fork'")
            return real_get_context(method)

        monkeypatch.setattr(multiprocessing, "get_context", no_fork)
        with obs.observe():
            context = pool_module._pool_context()
            counters = obs.get_registry().snapshot()["counters"]
        assert context is not None
        assert counters["engine.pool.fork_unavailable"] == 1


# ---------------------------------------------------------------------------
# The ISSUE acceptance scenario: crash + slow GED + deadline, end to end
# ---------------------------------------------------------------------------
class TestDegradedQueryUnderFaults:
    def test_indexed_query_survives_faults_and_flags_degradation(self, tmp_path):
        db = random_database(seed=11, size=24, min_nodes=3, max_nodes=5)
        query = quartile_relevance(db, quantile=0.3)
        engine = _engine(ExactGED(), db)
        try:
            index = NBIndex.build(
                db, ExactGED(), engine=engine,
                num_vantage_points=4, branching=4, seed=0,
            )
            # Drop the build-time pool and cache: the query must fork fresh
            # workers under the fault plan and recompute distances under
            # the deadline.
            engine.invalidate_pool()
            engine._cache.clear()
            engine.reset()

            token = tmp_path / "crash-token"
            token.write_text("armed")
            plan = FaultPlan(
                crash_token=str(token),
                slow_sites={"ged.exact": 0.05},
                slow_limit=1,
            )
            deadline = Deadline(seconds=0.02)
            with faults.injected(plan):
                result = index.query(query, theta=4.0, k=3, deadline=deadline)
        finally:
            engine.invalidate_pool()

        # A valid answer came back despite a dead worker and a stalled pair.
        assert result.answer
        assert all(0 <= gid < len(db) for gid in result.answer)
        assert all(gain >= 0 for gain in result.gains)
        # ...and it is honestly flagged as degraded.
        assert result.stats.degraded
        assert result.stats.degradation_events > 0
        assert set(result.stats.degradations) <= {
            "ged.exact.beam", "ged.exact.bipartite",
        }
        assert deadline.degraded
        # The crash was recovered through respawn + retry.
        stats = engine.stats()
        assert stats["pool_retries"] >= 1
        assert stats["pool_respawns"] >= 1
        assert not token.exists()

    def test_query_deadline_without_faults_marks_stats(self):
        db = random_database(seed=3, size=16, min_nodes=3, max_nodes=5)
        query = quartile_relevance(db, quantile=0.3)
        index = NBIndex.build(
            db, ExactGED(), num_vantage_points=4, branching=4, seed=0, workers=1,
        )
        index._counting._cache.clear()
        result = index.query(
            query, theta=4.0, k=3, deadline=Deadline(3600.0, expansion_limit=1)
        )
        assert result.answer
        assert result.stats.degraded
        assert result.stats.degradations.get("ged.exact.beam", 0) >= 1

    def test_ambient_deadline_scope_reaches_query(self):
        db = random_database(seed=3, size=16, min_nodes=3, max_nodes=5)
        query = quartile_relevance(db, quantile=0.3)
        index = NBIndex.build(
            db, ExactGED(), num_vantage_points=4, branching=4, seed=0, workers=1,
        )
        index._counting._cache.clear()
        with deadline_scope(Deadline(3600.0, expansion_limit=1)):
            result = index.query(query, theta=4.0, k=3)
        assert result.stats.degraded

    def test_undegraded_query_stats_stay_clean(self):
        db = random_database(seed=3, size=16, min_nodes=3, max_nodes=5)
        query = quartile_relevance(db, quantile=0.3)
        index = NBIndex.build(
            db, StarDistance(), num_vantage_points=4, branching=4, seed=0, workers=1,
        )
        result = index.query(query, theta=4.0, k=3)
        assert not result.stats.degraded
        assert result.stats.degradation_events == 0
        assert result.stats.degradations == {}


# ---------------------------------------------------------------------------
# Checkpointed builds
# ---------------------------------------------------------------------------
def _index_arrays(path):
    payload = read_checksummed(path)
    with np.load(io.BytesIO(payload), allow_pickle=False) as data:
        return {key: data[key].copy() for key in data.files}


BUILD_PARAMS = dict(num_vantage_points=5, branching=4, seed=13)


class TestCheckpointResume:
    @pytest.fixture(scope="class")
    def db(self):
        return random_database(seed=7, size=30)

    @pytest.mark.parametrize("stage", ["vantage", "embed", "ladder", "tree"])
    def test_killed_build_resumes_bit_identical(self, db, tmp_path, stage):
        dist = StarDistance()
        reference = NBIndex.build(db, dist, workers=1, **BUILD_PARAMS)
        ref_path = tmp_path / "reference.npz"
        save_index(reference, ref_path)

        ckpt = tmp_path / f"build-{stage}.ckpt"
        with faults.injected(FaultPlan(abort_after_stage=stage)):
            with pytest.raises(SimulatedCrash):
                NBIndex.build(
                    db, dist, workers=1, checkpoint=str(ckpt), **BUILD_PARAMS
                )
        assert ckpt.exists()

        resumed = NBIndex.build(
            db, dist, workers=1, checkpoint=str(ckpt), resume=True, **BUILD_PARAMS
        )
        res_path = tmp_path / "resumed.npz"
        save_index(resumed, res_path)

        ref_arrays = _index_arrays(ref_path)
        res_arrays = _index_arrays(res_path)
        assert set(ref_arrays) == set(res_arrays)
        for key in ref_arrays:
            if key == "build_seconds":
                continue
            assert np.array_equal(ref_arrays[key], res_arrays[key]), key

    def test_resume_rejects_other_database(self, db, tmp_path):
        ckpt = tmp_path / "build.ckpt"
        with faults.injected(FaultPlan(abort_after_stage="vantage")):
            with pytest.raises(SimulatedCrash):
                NBIndex.build(
                    db, StarDistance(), workers=1,
                    checkpoint=str(ckpt), **BUILD_PARAMS,
                )
        other = random_database(seed=8, size=30)
        with pytest.raises(DatabaseMismatchError, match="fingerprint"):
            NBIndex.build(
                other, StarDistance(), workers=1,
                checkpoint=str(ckpt), resume=True, **BUILD_PARAMS,
            )

    def test_non_checkpoint_file_rejected(self, db, tmp_path):
        bogus = tmp_path / "bogus.ckpt"
        buffer = io.BytesIO()
        np.savez_compressed(buffer, x=np.arange(3))
        write_checksummed(bogus, buffer.getvalue())
        with pytest.raises(CheckpointError, match="not a build checkpoint"):
            BuildCheckpoint.open(bogus, db, resume=True)

    def test_fresh_open_ignores_existing_file_without_resume(self, db, tmp_path):
        path = tmp_path / "stale.ckpt"
        path.write_bytes(b"garbage that would never parse")
        checkpoint = BuildCheckpoint.open(path, db, resume=False)
        assert checkpoint.stages == ()

    def test_missing_stage_array_raises(self, db, tmp_path):
        checkpoint = BuildCheckpoint.open(tmp_path / "new.ckpt", db)
        with pytest.raises(CheckpointError, match="no array"):
            checkpoint.array("vantage", "vp_indices")


# ---------------------------------------------------------------------------
# Persistence integrity (torn writes, truncation, versioning, fingerprints)
# ---------------------------------------------------------------------------
class TestPersistenceIntegrity:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        db = random_database(seed=4, size=25)
        dist = StarDistance()
        index = NBIndex.build(
            db, dist, num_vantage_points=4, branching=4, seed=1, workers=1
        )
        path = tmp_path_factory.mktemp("index") / "index.npz"
        save_index(index, path)
        return db, dist, index, path

    def test_roundtrip_still_works(self, saved):
        db, dist, index, path = saved
        loaded = load_index(path, db, dist)
        assert np.array_equal(loaded.embedding.coords, index.embedding.coords)

    def test_torn_write_detected_on_load(self, saved, tmp_path):
        db, dist, index, _ = saved
        torn = tmp_path / "torn.npz"
        with faults.injected(FaultPlan(torn_write=True)):
            save_index(index, torn)
        with pytest.raises(CorruptIndexError, match="torn write"):
            load_index(torn, db, dist)

    def test_truncated_file_detected(self, saved, tmp_path):
        db, dist, _, path = saved
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(CorruptIndexError):
            load_index(clipped, db, dist)

    def test_tiny_file_detected(self, saved, tmp_path):
        db, dist, _, _ = saved
        stub = tmp_path / "stub.npz"
        stub.write_bytes(b"RP")
        with pytest.raises(CorruptIndexError, match="truncated"):
            load_index(stub, db, dist)

    def test_bad_magic_detected(self, saved, tmp_path):
        db, dist, _, path = saved
        raw = bytearray(path.read_bytes())
        raw[:6] = b"NOTME\n"
        mangled = tmp_path / "mangled.npz"
        mangled.write_bytes(bytes(raw))
        with pytest.raises(CorruptIndexError, match="magic"):
            load_index(mangled, db, dist)

    def test_bit_flip_fails_checksum(self, saved, tmp_path):
        db, dist, _, path = saved
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        flipped = tmp_path / "flipped.npz"
        flipped.write_bytes(bytes(raw))
        with pytest.raises(CorruptIndexError, match="checksum"):
            load_index(flipped, db, dist)

    def test_wrong_database_fingerprint(self, saved):
        _, dist, _, path = saved
        other = random_database(seed=99, size=25)
        with pytest.raises(DatabaseMismatchError, match="fingerprint"):
            load_index(path, other, dist)

    def test_future_format_version_rejected(self, saved, tmp_path, monkeypatch):
        db, dist, index, _ = saved
        future = tmp_path / "future.npz"
        with pytest.MonkeyPatch.context() as patched:
            patched.setattr(persistence, "FORMAT_VERSION", 99)
            save_index(index, future)
        with pytest.raises(IndexFormatError, match="99"):
            load_index(future, db, dist)

    def test_legacy_bare_npz_still_loads(self, saved, tmp_path, monkeypatch):
        db, dist, index, path = saved
        legacy = tmp_path / "legacy.npz"
        legacy.write_bytes(read_checksummed(path))
        monkeypatch.setattr(persistence, "_legacy_warned", False)
        with pytest.warns(DeprecationWarning, match="legacy bare-.npz"):
            loaded = load_index(legacy, db, dist)
        assert np.array_equal(loaded.embedding.coords, index.embedding.coords)

    def test_legacy_npz_warns_once_but_counts_every_load(
        self, saved, tmp_path, monkeypatch
    ):
        import warnings

        db, dist, _, path = saved
        legacy = tmp_path / "legacy.npz"
        legacy.write_bytes(read_checksummed(path))
        monkeypatch.setattr(persistence, "_legacy_warned", False)
        with obs.observe() as run:
            with pytest.warns(DeprecationWarning):
                load_index(legacy, db, dist)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second load must be silent
                load_index(legacy, db, dist)
            counters = run.stats()["counters"]
        assert counters["persistence.legacy_npz_loads"] == 2

    def test_exception_hierarchy_is_valueerror(self):
        for exc in (CorruptIndexError, IndexFormatError,
                    DatabaseMismatchError, CheckpointError):
            assert issubclass(exc, PersistenceError)
            assert issubclass(exc, ValueError)


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------
class TestAtomicIO:
    def test_atomic_write_replaces_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_write(path, "w", encoding="utf-8") as handle:
            handle.write("new contents")
        assert path.read_text() == "new contents"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_leaves_original_and_no_temp(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_write(path, "w", encoding="utf-8") as handle:
                handle.write("half-finish")
                raise RuntimeError("boom")
        assert path.read_text() == "precious"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_checksummed_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        payload = b"\x00\x01payload bytes\xff" * 100
        write_checksummed(path, payload)
        assert read_checksummed(path) == payload

    def test_save_database_crash_keeps_previous_file(self, tmp_path):
        db = random_database(seed=1, size=6)
        path = tmp_path / "db.jsonl"
        save_database(db, path)

        class ExplodingDatabase(GraphDatabase):
            def feature_vector(self, index):
                if index >= 2:
                    raise RuntimeError("disk on fire")
                return super().feature_vector(index)

        bad = ExplodingDatabase(db.graphs, db.features)
        with pytest.raises(RuntimeError, match="disk on fire"):
            save_database(bad, path)
        reloaded = load_database(path)
        assert len(reloaded) == len(db)
        assert list(tmp_path.glob("*.tmp")) == []


# ---------------------------------------------------------------------------
# Fault harness self-checks
# ---------------------------------------------------------------------------
class TestFaultHarness:
    def test_injected_scope_installs_and_clears(self):
        assert faults.active() is None
        plan = FaultPlan(torn_write=True)
        with faults.injected(plan):
            assert faults.active() is plan
        assert faults.active() is None

    def test_maybe_tear_is_one_shot(self):
        with faults.injected(FaultPlan(torn_write=True)):
            first = faults.maybe_tear(b"0123456789")
            second = faults.maybe_tear(b"0123456789")
        assert first == b"01234"
        assert second is None

    def test_slow_limit_caps_injections(self):
        with faults.injected(FaultPlan(slow_sites={"x": 0.001}, slow_limit=2)):
            for _ in range(5):
                faults.maybe_slow("x")
            assert faults._slow_injected == 2

    def test_abort_after_stage_only_fires_on_named_stage(self):
        with faults.injected(FaultPlan(abort_after_stage="tree")):
            faults.maybe_abort_stage("vantage")
            with pytest.raises(SimulatedCrash):
                faults.maybe_abort_stage("tree")

    def test_no_plan_hooks_are_noops(self):
        assert faults.active() is None
        faults.maybe_crash_worker()
        faults.maybe_slow("anything")
        faults.maybe_abort_stage("anything")
        assert faults.maybe_tear(b"data") is None

"""Distance facades: counting, caching, matrices, axiom checking."""

import numpy as np

from repro.ged import (
    CachingDistance,
    CountingDistance,
    StarDistance,
    check_metric_axioms,
    pairwise_matrix,
)
from repro.graphs import GraphDatabase, path_graph


def _graphs():
    return [
        path_graph(["C", "C"]),
        path_graph(["C", "N"]),
        path_graph(["O", "O", "O"]),
    ]


class TestCountingDistance:
    def test_counts_calls(self):
        counting = CountingDistance(StarDistance())
        g = _graphs()
        counting(g[0], g[1])
        counting(g[0], g[2])
        assert counting.calls == 2
        counting.reset()
        assert counting.calls == 0


class TestCachingDistance:
    def test_symmetric_cache_by_graph_id(self):
        db = GraphDatabase(_graphs(), np.zeros(3))
        inner = CountingDistance(StarDistance())
        cached = CachingDistance(inner)
        a = cached(db[0], db[1])
        b = cached(db[1], db[0])
        assert a == b
        assert inner.calls == 1
        assert cached.hits == 1
        assert cached.misses == 1

    def test_cache_without_graph_ids_uses_identity(self):
        g1 = path_graph(["C"])
        g2 = path_graph(["N"])
        cached = CachingDistance(StarDistance())
        cached(g1, g2)
        cached(g1, g2)
        assert cached.hits == 1
        assert len(cached) == 1

    def test_clear(self):
        cached = CachingDistance(StarDistance())
        g = _graphs()
        cached(g[0], g[1])
        cached.clear()
        assert len(cached) == 0
        assert cached.misses == 0


class TestPairwiseMatrix:
    def test_symmetric_zero_diagonal(self):
        matrix = pairwise_matrix(_graphs(), StarDistance())
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_evaluates_each_pair_once(self):
        counting = CountingDistance(StarDistance())
        pairwise_matrix(_graphs(), counting)
        assert counting.calls == 3  # C(3, 2)


class TestCheckMetricAxioms:
    def test_accepts_true_metric(self):
        assert check_metric_axioms(_graphs(), StarDistance()) == []

    def test_detects_asymmetry(self):
        calls = []

        def broken(g1, g2):
            calls.append(1)
            return float(len(calls) % 7)  # order-dependent garbage

        violations = check_metric_axioms(_graphs(), broken)
        assert violations  # something must be flagged

    def test_detects_triangle_violation(self):
        g = _graphs()
        values = {
            (0, 1): 1.0, (1, 0): 1.0,
            (0, 2): 10.0, (2, 0): 10.0,
            (1, 2): 1.0, (2, 1): 1.0,
        }

        def non_metric(g1, g2):
            a, b = g1.graph_id, g2.graph_id
            if a == b:
                return 0.0
            return values[(a, b)]

        for i, graph in enumerate(g):
            graph.graph_id = i
        violations = check_metric_axioms(g, non_metric)
        assert any("triangle" in v for v in violations)

"""Smoke tests: every example script runs to completion.

The fast scripts run as subprocesses; the heavier comparison script is
compile-checked only (its full run is exercised implicitly — every engine
it calls has its own tests).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "drug_discovery.py",
    "interactive_zoom.py",
]

ALL_EXAMPLES = FAST_EXAMPLES + [
    "collaboration_groups.py",
    "engines_comparison.py",
]

FAST_EXAMPLES = FAST_EXAMPLES + ["metric_space_points.py", "information_cascades.py", "bug_triage.py"]
ALL_EXAMPLES = ALL_EXAMPLES + ["metric_space_points.py", "information_cascades.py", "bug_triage.py"]


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES / script), doraise=True)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()

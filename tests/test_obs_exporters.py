"""Exporter formats are frozen by golden files under tests/golden/.

The JSON metrics document is consumed by ``scripts/validate_metrics.py``
in CI and by anyone post-processing ``--metrics`` output; the Prometheus
text format must stay scrape-compatible.  Regenerate the goldens with::

    PYTHONPATH=src python tests/test_obs_exporters.py --regenerate

after an intentional format change, and review the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.obs import MetricsRegistry, to_json, to_prometheus

GOLDEN_DIR = Path(__file__).parent / "golden"


def reference_document() -> dict:
    """A deterministic metrics document exercising every value type."""
    registry = MetricsRegistry()
    registry.counter("engine.evaluations", 675)
    registry.counter("ged.star.calls", 1500)
    registry.counter("query.count", 1)
    registry.gauge("engine.cache_size", 512)
    registry.observe("index.build_seconds", 0.25)
    registry.observe("query.search_seconds", 0.015625)
    registry.observe("query.search_seconds", 0.03125)
    registry.histogram("engine.batch_size", 3, buckets=(2, 8, 32))
    registry.histogram("engine.batch_size", 30, buckets=(2, 8, 32))
    registry.histogram("engine.batch_size", 100, buckets=(2, 8, 32))
    spans = [
        {
            "name": "index.build",
            "seconds": 0.25,
            "attrs": {"n": 40, "branching": 8},
            "children": [
                {
                    "name": "index.embed",
                    "seconds": 0.125,
                    "attrs": {},
                    "children": [],
                },
            ],
        },
        {
            "name": "index.query",
            "seconds": 0.0625,
            "attrs": {"theta": 7.0, "k": 3, "answer_size": 3},
            "children": [],
        },
    ]
    return {
        "schema": "repro.obs/v1",
        "metrics": registry.snapshot(),
        "spans": spans,
    }


def test_json_export_matches_golden():
    document = reference_document()
    expected = (GOLDEN_DIR / "metrics.json").read_text()
    assert to_json(document) == expected


def test_prometheus_export_matches_golden():
    document = reference_document()
    expected = (GOLDEN_DIR / "metrics.prom").read_text()
    assert to_prometheus(document["metrics"]) == expected


def test_golden_json_is_valid_and_schema_tagged():
    document = json.loads((GOLDEN_DIR / "metrics.json").read_text())
    assert document["schema"] == "repro.obs/v1"
    assert set(document) == {"schema", "metrics", "spans"}
    assert set(document["metrics"]) == {
        "counters", "gauges", "timers", "histograms",
    }


def test_prometheus_format_invariants():
    """Structural checks independent of the golden bytes."""
    text = to_prometheus(reference_document()["metrics"])
    lines = text.splitlines()
    # Every metric is announced with a TYPE line and prefixed repro_.
    types = [line for line in lines if line.startswith("# TYPE ")]
    assert all(line.split()[2].startswith("repro_") for line in types)
    kinds = {line.split()[3] for line in types}
    assert kinds == {"counter", "gauge", "summary", "histogram"}
    # Histogram buckets are cumulative and end at +Inf == _count.
    buckets = [line for line in lines
               if line.startswith("repro_engine_batch_size_bucket")]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)
    assert '{le="+Inf"}' in buckets[-1]
    count_line = next(line for line in lines
                      if line.startswith("repro_engine_batch_size_count"))
    assert counts[-1] == int(count_line.rsplit(" ", 1)[1])
    # Metric names never contain dots.
    for line in lines:
        if not line.startswith("#"):
            assert "." not in line.split("{")[0].split()[0]


def test_write_metrics_dispatches_on_suffix(tmp_path):
    with obs.observe():
        obs.counter("c", 2)
        json_path = obs.write_metrics(tmp_path / "out.json")
        prom_path = obs.write_metrics(tmp_path / "out.prom")
    document = json.loads(json_path.read_text())
    assert document["metrics"]["counters"]["c"] == 2
    assert "# TYPE repro_c counter" in prom_path.read_text()


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    document = reference_document()
    (GOLDEN_DIR / "metrics.json").write_text(to_json(document))
    (GOLDEN_DIR / "metrics.prom").write_text(to_prometheus(document["metrics"]))
    print(f"wrote {GOLDEN_DIR / 'metrics.json'}")
    print(f"wrote {GOLDEN_DIR / 'metrics.prom'}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print("use --regenerate to rewrite the golden files", file=sys.stderr)
        sys.exit(2)

"""Theoretical guarantees: submodularity (Theorem 2), monotonicity, and the
(1 − 1/e) greedy approximation (Eq. 7) against brute-force optima."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_theta_neighborhoods,
    baseline_greedy,
    coverage,
    greedy_guarantee_holds,
    optimal_answer,
    representative_power,
    verify_submodularity,
)
from repro.graphs import quartile_relevance
from repro.ged import StarDistance
from tests.conftest import random_database


# ---------------------------------------------------------------------------
# Random symmetric neighborhood structures (abstract instances): hypothesis
# builds the N(g) map directly, which covers far more structure than graph
# sampling would.
# ---------------------------------------------------------------------------
@st.composite
def neighborhood_structure(draw, max_items=10):
    n = draw(st.integers(min_value=2, max_value=max_items))
    neighborhoods = {i: {i} for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                neighborhoods[i].add(j)
                neighborhoods[j].add(i)
    return {i: frozenset(members) for i, members in neighborhoods.items()}


class TestSubmodularity:
    @settings(max_examples=60, deadline=None)
    @given(neighborhood_structure(), st.data())
    def test_eq4_on_random_witnesses(self, neighborhoods, data):
        items = sorted(neighborhoods)
        small = data.draw(st.sets(st.sampled_from(items), max_size=3))
        extra_small = data.draw(st.sets(st.sampled_from(items), max_size=3))
        large = small | extra_small
        extra = data.draw(st.sampled_from(items))
        assert verify_submodularity(
            neighborhoods, len(items), sorted(small), sorted(large), extra
        )

    @settings(max_examples=40, deadline=None)
    @given(neighborhood_structure(), st.data())
    def test_monotonicity(self, neighborhoods, data):
        items = sorted(neighborhoods)
        subset = data.draw(st.sets(st.sampled_from(items), max_size=4))
        extra = data.draw(st.sampled_from(items))
        before = representative_power(neighborhoods, subset, len(items))
        after = representative_power(neighborhoods, subset | {extra}, len(items))
        assert after >= before - 1e-12

    def test_verify_submodularity_rejects_non_subset(self):
        neighborhoods = {0: frozenset({0}), 1: frozenset({1})}
        with pytest.raises(ValueError):
            verify_submodularity(neighborhoods, 2, [0], [1], 0)


class TestGreedyGuarantee:
    @settings(max_examples=30, deadline=None)
    @given(neighborhood_structure(max_items=9), st.integers(min_value=1, max_value=4))
    def test_greedy_vs_bruteforce_on_abstract_instances(self, neighborhoods, k):
        items = sorted(neighborhoods)
        # Greedy on the abstract structure.
        covered: set[int] = set()
        remaining = set(items)
        for _ in range(min(k, len(items))):
            best = max(sorted(remaining), key=lambda g: len(neighborhoods[g] - covered))
            covered |= neighborhoods[best]
            remaining.discard(best)
        _, optimal_covered = optimal_answer(neighborhoods, items, k)
        assert greedy_guarantee_holds(len(covered), optimal_covered)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy_vs_bruteforce_on_graphs(self, seed):
        db = random_database(seed=seed, size=18)
        dist = StarDistance()
        q = quartile_relevance(db, quantile=0.2)
        theta, k = 5.0, 3
        result = baseline_greedy(db, dist, q, theta, k)
        relevant = [int(i) for i in db.relevant_indices(q)]
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
        _, optimal_covered = optimal_answer(neighborhoods, relevant, k)
        assert greedy_guarantee_holds(len(result.covered), optimal_covered)
        # Coverage can never exceed the optimum.
        assert len(result.covered) <= optimal_covered


class TestBruteForce:
    def test_known_optimum(self):
        neighborhoods = {
            0: frozenset({0, 1}),
            1: frozenset({0, 1}),
            2: frozenset({2}),
            3: frozenset({3}),
        }
        subset, covered = optimal_answer(neighborhoods, [0, 1, 2, 3], 2)
        assert covered == 3  # {0,1} plus one singleton
        assert 0 in subset or 1 in subset

    def test_guard_against_blowup(self):
        neighborhoods = {i: frozenset({i}) for i in range(100)}
        with pytest.raises(ValueError, match="exceed"):
            optimal_answer(neighborhoods, list(range(100)), 2)

    def test_guarantee_holds_edge_cases(self):
        assert greedy_guarantee_holds(0, 0)
        assert greedy_guarantee_holds(7, 10)
        assert not greedy_guarantee_holds(3, 10)


class TestRepresentativePrimitives:
    def test_coverage_union(self):
        neighborhoods = {0: frozenset({0, 1}), 2: frozenset({2})}
        assert coverage(neighborhoods, [0, 2]) == frozenset({0, 1, 2})

    def test_pi_normalization(self):
        neighborhoods = {0: frozenset({0, 1})}
        assert representative_power(neighborhoods, [0], 4) == 0.5
        assert representative_power(neighborhoods, [], 4) == 0.0
        assert representative_power(neighborhoods, [0], 0) == 0.0

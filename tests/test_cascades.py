"""Cascade dataset (Table 1, Example 2): structure, imbalance, and the
representative-vs-traditional community-coverage contrast."""

from collections import Counter

import numpy as np
import pytest

from repro.baselines import traditional_top_k
from repro.core import baseline_greedy
from repro.datasets import calibrate_theta, cascades_like, load
from repro.datasets.cascades import NUM_TOPICS, origin_community, topic_query
from repro.ged import StarDistance


class TestGeneration:
    def test_deterministic(self):
        a = cascades_like(num_graphs=30, seed=5)
        b = cascades_like(num_graphs=30, seed=5)
        assert np.allclose(a.features, b.features)
        assert all(g1 == g2 for g1, g2 in zip(a, b))

    def test_cascades_are_trees(self):
        db = cascades_like(num_graphs=40, seed=1)
        for g in db:
            assert g.num_edges == g.num_nodes - 1

    def test_topic_vectors_binary_nonempty(self):
        db = cascades_like(num_graphs=40, seed=2)
        feats = db.features
        assert set(np.unique(feats)) <= {0.0, 1.0}
        assert (feats.sum(axis=1) >= 1).all()

    def test_populous_community_dominates(self):
        db = cascades_like(num_graphs=300, seed=3)
        origins = Counter(origin_community(g) for g in db)
        assert origins.most_common(1)[0][0] == "u0"
        assert origins["u0"] > len(db) / 4

    def test_registry_load(self):
        spec = load("cascades", StarDistance(), num_graphs=40, seed=4)
        assert spec.theta > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            cascades_like(num_graphs=0)
        with pytest.raises(ValueError):
            cascades_like(num_graphs=5, num_communities=1)


class TestTopicQuery:
    def test_jaccard_semantics(self):
        q = topic_query([0, 1], threshold=0.5)
        row = np.zeros(NUM_TOPICS)
        row[[0, 1]] = 1.0
        assert q(row)
        row2 = np.zeros(NUM_TOPICS)
        row2[[5]] = 1.0
        assert not q(row2)

    def test_selects_a_strict_subset(self):
        db = cascades_like(num_graphs=200, seed=6)
        q = topic_query([0, 2], threshold=0.3)
        relevant = db.relevant_indices(q)
        assert 0 < len(relevant) < len(db)


class TestCommunityCoverage:
    def test_rep_spans_at_least_as_many_communities_as_topk(self):
        db = cascades_like(num_graphs=300, seed=17)
        dist = StarDistance()
        theta = calibrate_theta(db, dist, quantile=0.05, rng=17)
        q = topic_query([0, 2, 4, 6], threshold=0.2)
        k = 6
        top = traditional_top_k(db, q, k)
        rep = baseline_greedy(db, dist, q, theta, k)
        top_communities = {origin_community(db[g]) for g in top}
        rep_communities = {origin_community(db[g]) for g in rep.answer}
        assert len(rep_communities) >= len(top_communities)

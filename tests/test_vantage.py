"""Vantage embedding: Theorems 4–5 and candidate generation."""

import numpy as np
import pytest

from repro.ged import StarDistance
from repro.index import VantageEmbedding, select_vantage_points
from tests.conftest import random_database


def _setup(seed=3, size=50, num_vps=6):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    vps = select_vantage_points(db.graphs, num_vps, rng=seed)
    return db, dist, VantageEmbedding(db.graphs, vps, dist)


class TestSelection:
    def test_random_selection_count_and_range(self):
        db = random_database(seed=1, size=30)
        vps = select_vantage_points(db.graphs, 5, rng=0)
        assert len(vps) == 5
        assert len(set(vps)) == 5
        assert all(0 <= v < 30 for v in vps)

    def test_maxmin_selection_spreads(self):
        db = random_database(seed=1, size=30)
        dist = StarDistance()
        vps = select_vantage_points(
            db.graphs, 4, rng=0, strategy="maxmin", distance=dist
        )
        assert len(set(vps)) == 4

    def test_maxmin_requires_distance(self):
        db = random_database(seed=1, size=10)
        with pytest.raises(ValueError, match="requires a distance"):
            select_vantage_points(db.graphs, 2, rng=0, strategy="maxmin")

    def test_unknown_strategy(self):
        db = random_database(seed=1, size=10)
        with pytest.raises(ValueError, match="unknown strategy"):
            select_vantage_points(db.graphs, 2, rng=0, strategy="bogus")

    def test_count_validation(self):
        db = random_database(seed=1, size=10)
        with pytest.raises(ValueError):
            select_vantage_points(db.graphs, 0, rng=0)
        with pytest.raises(ValueError):
            select_vantage_points(db.graphs, 11, rng=0)


class TestBounds:
    def test_lower_bound_is_lower_bound(self):
        db, dist, emb = _setup()
        rng = np.random.default_rng(0)
        for _ in range(40):
            i, j = int(rng.integers(50)), int(rng.integers(50))
            true = dist(db[i], db[j])
            assert emb.lower_bound(i, j) <= true + 1e-9

    def test_upper_bound_is_upper_bound(self):
        db, dist, emb = _setup()
        rng = np.random.default_rng(1)
        for _ in range(40):
            i, j = int(rng.integers(50)), int(rng.integers(50))
            true = dist(db[i], db[j])
            assert emb.upper_bound(i, j) >= true - 1e-9

    def test_bounds_zero_for_self(self):
        _, _, emb = _setup()
        assert emb.lower_bound(7, 7) == 0.0

    def test_vectorized_bounds_match_scalar(self):
        _, _, emb = _setup()
        among = np.arange(50)
        lows = emb.lower_bounds_to(emb.coords[3], among)
        ups = emb.upper_bounds_to(emb.coords[3], among)
        for j in range(50):
            assert lows[j] == pytest.approx(emb.lower_bound(3, j))
            assert ups[j] == pytest.approx(emb.upper_bound(3, j))

    def test_embed_external_graph_consistent(self):
        db, dist, emb = _setup()
        coords = emb.embed(db[5])
        assert np.allclose(coords, emb.coords[5])


class TestCandidates:
    def test_candidates_superset_of_true_neighborhood(self):
        db, dist, emb = _setup()
        theta = 5.0
        for i in range(0, 50, 7):
            candidates = set(int(c) for c in emb.candidates(i, theta))
            true = {
                j for j in range(50)
                if dist(db[i], db[j]) <= theta + 1e-9
            }
            assert true <= candidates

    def test_candidates_respect_among(self):
        _, _, emb = _setup()
        among = np.array([0, 2, 4, 6, 8])
        candidates = emb.candidates(4, 100.0, among=among)
        assert set(int(c) for c in candidates) <= set(int(a) for a in among)

    def test_candidates_exclude_vantage_violations(self):
        db, dist, emb = _setup()
        theta = 4.0
        candidates = set(int(c) for c in emb.candidates(0, theta))
        for j in range(50):
            if emb.lower_bound(0, j) > theta:
                assert j not in candidates

    def test_huge_theta_returns_everything(self):
        _, _, emb = _setup()
        assert len(emb.candidates(0, 1e9)) == 50

    def test_candidate_counts_match_naive(self):
        _, _, emb = _setup()
        among = np.arange(50)
        rows = np.array([0, 5, 10])
        thetas = [2.0, 5.0, 10.0]
        counts = emb.candidate_counts(rows, thetas, among)
        for r, i in enumerate(rows):
            for t, theta in enumerate(thetas):
                naive = len(emb.candidates(int(i), theta, among=among))
                assert counts[r, t] == naive

    def test_candidate_counts_monotone_in_theta(self):
        _, _, emb = _setup()
        among = np.arange(50)
        counts = emb.candidate_counts(np.arange(10), [1.0, 3.0, 9.0, 27.0], among)
        assert (np.diff(counts, axis=1) >= 0).all()

    def test_requires_a_vantage_point(self):
        db = random_database(seed=1, size=5)
        with pytest.raises(ValueError):
            VantageEmbedding(db.graphs, [], StarDistance())

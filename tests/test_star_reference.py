"""The vectorized star cost matrix against a naive reference implementation.

``repro.ged.star`` computes star-to-star costs with a closed form
(root mismatch + (|Δdeg| + L1 of token counts) / 2) over ``cdist``; this
test re-derives every entry from first principles — explicit multiset
matching of branch tokens — and the padded assignment against a
brute-force Hungarian run, so a vectorization bug cannot hide.
"""

from collections import Counter

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.ged.star import StarDistance, _padded_cost_matrix, _star_cost_matrix, _StarProfile
from tests.conftest import random_connected_graph


def naive_star_cost(g1, v1, g2, v2) -> float:
    """Star ground cost from the definition: root mismatch plus the optimal
    unit-cost matching between branch-token multisets,
    ``max(|B1|, |B2|) − |B1 ∩ B2|``."""
    root = 0.0 if g1.node_label(v1) == g2.node_label(v2) else 1.0
    b1 = Counter(
        (g1.edge_label(v1, u), g1.node_label(u)) for u in g1.neighbors(v1)
    )
    b2 = Counter(
        (g2.edge_label(v2, u), g2.node_label(u)) for u in g2.neighbors(v2)
    )
    common = sum((b1 & b2).values())
    return root + max(sum(b1.values()), sum(b2.values())) - common


class TestCostMatrixAgainstNaive:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_entry_matches(self, seed):
        rng = np.random.default_rng(seed)
        g1 = random_connected_graph(rng, int(rng.integers(2, 8)))
        g2 = random_connected_graph(rng, int(rng.integers(2, 8)))
        matrix = _star_cost_matrix(_StarProfile(g1), _StarProfile(g2))
        for v1 in g1.nodes():
            for v2 in g2.nodes():
                assert matrix[v1, v2] == pytest.approx(
                    naive_star_cost(g1, v1, g2, v2)
                ), (seed, v1, v2)


class TestPaddedAssignment:
    @pytest.mark.parametrize("seed", range(5))
    def test_distance_equals_bruteforce_assignment(self, seed):
        rng = np.random.default_rng(seed + 100)
        g1 = random_connected_graph(rng, int(rng.integers(2, 6)))
        g2 = random_connected_graph(rng, int(rng.integers(2, 6)))
        padded = _padded_cost_matrix(_StarProfile(g1), _StarProfile(g2))
        rows, cols = linear_sum_assignment(padded)
        brute = float(padded[rows, cols].sum())
        assert StarDistance()(g1, g2) == pytest.approx(brute)

    def test_padding_blocks(self):
        rng = np.random.default_rng(0)
        g1 = random_connected_graph(rng, 3)
        g2 = random_connected_graph(rng, 2)
        padded = _padded_cost_matrix(_StarProfile(g1), _StarProfile(g2))
        assert padded.shape == (5, 5)
        # Deletion diagonal: 1 + degree.
        for v in g1.nodes():
            assert padded[v, 2 + v] == 1.0 + g1.degree(v)
        # Null-null block is free.
        assert (padded[3:, 2:] == 0.0).all()

"""Tests for database (de)serialization."""

import json

import numpy as np
import pytest

from repro.graphs import GraphDatabase, LabeledGraph, load_database, save_database
from repro.graphs.io import graph_from_dict, graph_to_dict


def _db():
    graphs = [
        LabeledGraph(["C", "N"], [(0, 1, "=")]),
        LabeledGraph(["O"]),
        LabeledGraph(["C", "C", "C"], [(0, 1), (1, 2)]),
    ]
    return GraphDatabase(graphs, np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]]))


class TestGraphDict:
    def test_roundtrip(self):
        g = LabeledGraph(["C", "N", "O"], [(0, 1, "="), (1, 2)])
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_graph_id_passthrough(self):
        g = graph_from_dict({"labels": ["C"], "edges": []}, graph_id=7)
        assert g.graph_id == 7


class TestDatabaseRoundtrip:
    def test_roundtrip(self, tmp_path):
        db = _db()
        path = tmp_path / "db.jsonl"
        save_database(db, path)
        loaded = load_database(path)
        assert len(loaded) == len(db)
        assert np.allclose(loaded.features, db.features)
        for a, b in zip(db, loaded):
            assert a == b

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro"):
            load_database(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": "repro-graphdb", "version": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            load_database(path)

    def test_rejects_truncated_file(self, tmp_path):
        db = _db()
        path = tmp_path / "db.jsonl"
        save_database(db, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            load_database(path)

    def test_blank_lines_ignored(self, tmp_path):
        db = _db()
        path = tmp_path / "db.jsonl"
        save_database(db, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_database(path)) == 3

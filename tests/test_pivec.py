"""Threshold ladders for π̂-vectors."""

import pytest

from repro.ged import StarDistance
from repro.index import ThresholdLadder, choose_thresholds, ladder_from_query_log
from tests.conftest import random_database


class TestThresholdLadder:
    def test_sorted_and_deduplicated(self):
        ladder = ThresholdLadder([5.0, 1.0, 5.0, 3.0])
        assert ladder.values == (1.0, 3.0, 5.0)
        assert len(ladder) == 3

    def test_index_for_exact_hit(self):
        ladder = ThresholdLadder([1.0, 3.0, 5.0])
        assert ladder.index_for(3.0) == 1

    def test_index_for_between(self):
        ladder = ThresholdLadder([1.0, 3.0, 5.0])
        assert ladder.index_for(2.0) == 1
        assert ladder.covering_threshold(2.0) == 3.0

    def test_index_for_beyond_ladder(self):
        ladder = ThresholdLadder([1.0, 3.0])
        assert ladder.index_for(4.0) is None
        assert ladder.covering_threshold(4.0) is None
        assert ladder.gap(4.0) is None

    def test_gap(self):
        ladder = ThresholdLadder([1.0, 4.0])
        assert ladder.gap(2.5) == pytest.approx(1.5)
        assert ladder.gap(1.0) == 0.0

    def test_iteration_and_getitem(self):
        ladder = ThresholdLadder([2.0, 1.0])
        assert list(ladder) == [1.0, 2.0]
        assert ladder[1] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdLadder([])
        with pytest.raises(ValueError):
            ThresholdLadder([-1.0])


class TestChooseThresholds:
    def test_quantile_placement(self):
        db = random_database(seed=9, size=40)
        ladder = choose_thresholds(db.graphs, StarDistance(), count=5,
                                   num_pairs=300, rng=0)
        assert 1 <= len(ladder) <= 5
        values = list(ladder)
        assert values == sorted(values)

    def test_dense_regions_get_more_thresholds(self):
        # With a bimodal sample the quantile ladder must place more
        # thresholds inside the modes than between them; simulate via a
        # fake distance producing two clusters of values.
        class FakeDist:
            def __init__(self):
                self.flip = False

            def __call__(self, a, b):
                self.flip = not self.flip
                return 1.0 if self.flip else 100.0

        db = random_database(seed=9, size=40)
        ladder = choose_thresholds(db.graphs, FakeDist(), count=8,
                                   num_pairs=400, rng=0)
        middle = [v for v in ladder if 10 < v < 90]
        assert len(middle) <= 1  # the empty valley gets at most one

    def test_count_validation(self):
        db = random_database(seed=9, size=10)
        with pytest.raises(ValueError):
            choose_thresholds(db.graphs, StarDistance(), count=0)


class TestQueryLogLadder:
    def test_small_log_taken_whole(self):
        ladder = ladder_from_query_log([5.0, 2.0, 5.0], count=10)
        assert ladder.values == (2.0, 5.0)

    def test_large_log_sampled(self):
        log = [float(i) for i in range(100)]
        ladder = ladder_from_query_log(log, count=10, rng=0)
        assert len(ladder) <= 10

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            ladder_from_query_log([])

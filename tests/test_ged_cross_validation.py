"""Cross-validation of the exact GED solver against networkx.

``networkx.graph_edit_distance`` is an independent exact implementation;
agreeing with it on random labelled graphs under the same unit cost model
rules out whole classes of bugs in our A* (edge accounting, heuristic
admissibility, completion costs).
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ged import ExactGED
from repro.graphs import LabeledGraph
from tests.conftest import random_connected_graph

ged = ExactGED()


def networkx_ged(a: LabeledGraph, b: LabeledGraph) -> float:
    return nx.graph_edit_distance(
        a.to_networkx(),
        b.to_networkx(),
        node_subst_cost=lambda x, y: 0.0 if x["label"] == y["label"] else 1.0,
        node_del_cost=lambda x: 1.0,
        node_ins_cost=lambda x: 1.0,
        edge_subst_cost=lambda x, y: 0.0 if x["label"] == y["label"] else 1.0,
        edge_del_cost=lambda x: 1.0,
        edge_ins_cost=lambda x: 1.0,
    )


@pytest.mark.parametrize("seed", range(8))
def test_matches_networkx_on_random_connected_graphs(seed):
    rng = np.random.default_rng(seed)
    a = random_connected_graph(rng, int(rng.integers(2, 6)))
    b = random_connected_graph(rng, int(rng.integers(2, 6)))
    assert ged(a, b) == pytest.approx(networkx_ged(a, b))


_LABELS = ("C", "N")


@st.composite
def tiny_graph(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    labels = [draw(st.sampled_from(_LABELS)) for _ in range(n)]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v, draw(st.sampled_from(("-", "=")))))
    return LabeledGraph(labels, edges)


@settings(max_examples=25, deadline=None)
@given(tiny_graph(), tiny_graph())
def test_property_matches_networkx(a, b):
    assert ged(a, b) == pytest.approx(networkx_ged(a, b))

"""Composite query functions and representative assignment analysis."""

import numpy as np
import pytest

from repro.analysis import assign_to_representatives
from repro.core import baseline_greedy
from repro.ged import StarDistance
from repro.graphs import And, GraphDatabase, Not, Or, path_graph
from repro.graphs.relevance import WeightedScoreThreshold, quartile_relevance
from tests.conftest import random_database


def _db():
    graphs = [path_graph(["C"]) for _ in range(6)]
    features = np.array([
        [0.0, 0.0], [1.0, 0.0], [0.0, 1.0],
        [1.0, 1.0], [0.5, 0.5], [2.0, 2.0],
    ])
    return GraphDatabase(graphs, features)


class TestComposites:
    def setup_method(self):
        self.db = _db()
        self.x_high = WeightedScoreThreshold([1.0, 0.0], threshold=1.0)
        self.y_high = WeightedScoreThreshold([0.0, 1.0], threshold=1.0)

    def test_and(self):
        both = And(self.x_high, self.y_high)
        assert list(self.db.relevant_indices(both)) == [3, 5]

    def test_or(self):
        either = Or(self.x_high, self.y_high)
        assert list(self.db.relevant_indices(either)) == [1, 2, 3, 5]

    def test_not(self):
        negated = Not(self.x_high)
        assert list(self.db.relevant_indices(negated)) == [0, 2, 4]

    def test_nested(self):
        query = And(Or(self.x_high, self.y_high), Not(self.y_high))
        assert list(self.db.relevant_indices(query)) == [1]

    def test_scalar_call_agrees_with_mask(self):
        query = And(self.x_high, Not(self.y_high))
        mask = query.mask(self.db.features)
        for row, expected in zip(self.db.features, mask):
            assert query(row) == bool(expected)

    def test_no_scalar_score(self):
        with pytest.raises(NotImplementedError):
            And(self.x_high).scores(self.db.features)
        with pytest.raises(NotImplementedError):
            Or(self.x_high).scores(self.db.features)
        with pytest.raises(NotImplementedError):
            Not(self.x_high).scores(self.db.features)

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()

    def test_composites_drive_queries(self):
        db = random_database(seed=5, size=40)
        dist = StarDistance()
        q = Or(
            quartile_relevance(db, dims=[0], quantile=0.6),
            quartile_relevance(db, dims=[1], quantile=0.6),
        )
        result = baseline_greedy(db, dist, q, 5.0, 3)
        assert len(result.answer) >= 1


class TestAssignment:
    def _run(self, seed=4):
        db = random_database(seed=seed, size=40)
        dist = StarDistance()
        q = quartile_relevance(db, quantile=0.3)
        result = baseline_greedy(db, dist, q, 5.0, 4)
        return db, dist, q, result

    def test_partition_properties(self):
        db, dist, q, result = self._run()
        assignment = assign_to_representatives(db, dist, q, result)
        relevant = set(int(i) for i in db.relevant_indices(q))
        assigned = set()
        for members in assignment.clusters.values():
            for m in members:
                assert m not in assigned  # disjoint
                assigned.add(m)
        assert assigned | set(assignment.uncovered) == relevant
        assert assigned == set(result.covered)

    def test_exemplars_represent_themselves(self):
        db, dist, q, result = self._run(seed=5)
        assignment = assign_to_representatives(db, dist, q, result)
        for exemplar in result.answer:
            assert exemplar in assignment.clusters[exemplar]
            assert assignment.representative_of(exemplar) == exemplar

    def test_members_within_theta_of_their_exemplar(self):
        db, dist, q, result = self._run(seed=6)
        assignment = assign_to_representatives(db, dist, q, result)
        for exemplar, members in assignment.clusters.items():
            for m in members:
                assert dist(db[m], db[exemplar]) <= result.theta + 1e-9

    def test_uncovered_beyond_theta_of_all(self):
        db, dist, q, result = self._run(seed=7)
        assignment = assign_to_representatives(db, dist, q, result)
        for gid in assignment.uncovered:
            for exemplar in result.answer:
                assert dist(db[gid], db[exemplar]) > result.theta

    def test_cluster_sizes_and_lookup(self):
        db, dist, q, result = self._run(seed=8)
        assignment = assign_to_representatives(db, dist, q, result)
        sizes = assignment.cluster_sizes
        assert sum(sizes.values()) == len(result.covered)
        assert assignment.representative_of(-1) is None

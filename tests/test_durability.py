"""Durability: checkpointing, backup/restore, scrubbing, crash recovery.

The acceptance property for `repro.durability` is the crash-consistency
invariant ``base + journal = database`` held across every commit point:
a checkpoint interrupted anywhere reopens either at the old generation
(with the full journal) or the new one (journal folded), never a mix;
a backup verifies every checksum before a restore writes a byte; the
scrubber detects every injected single-bit flip and heals shards from a
live replica or the loaded object without stopping queries.  Torn
writes, partial records and duplicated tails at every byte boundary
either reopen bit-identical to the surviving prefix or raise a typed
error — never a silent wrong answer.
"""

from __future__ import annotations

import json
import time
import warnings
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.delta import JournalError, MutationJournal
from repro.delta.journal import scan_journal
from repro.durability import (
    BackupError,
    CheckpointError,
    RestoreError,
    ScrubError,
    Scrubber,
    checkpoint_offline,
    create_backup,
    restore_backup,
    verify_backup,
    verify_deployment,
)
from repro.ged import StarDistance
from repro.graphs.io import load_database, save_database
from repro.index.nbindex import NBIndex
from repro.index.persistence import save_index
from repro.replica import ReplicatedIndex
from repro.resilience import faults
from repro.service.crashlog import CrashJournal
from repro.shard.build import build_shards
from repro.shard.manifest import ShardManifest
from tests.conftest import random_connected_graph, random_database

DIST = StarDistance()


def _deployment(tmp: Path, num_shards: int, *, size=24, base=18):
    """A saved database file + index artifact over its first ``base``
    graphs; the remaining rows stay available as insert material."""
    db = random_database(seed=71, size=size, num_features=3)
    live = db.subset(range(base))
    dbp = tmp / "base.jsonl"
    save_database(live, dbp)
    if num_shards == 1:
        index = NBIndex.build(
            live, DIST, num_vantage_points=4, branching=4,
            seed=np.random.default_rng(0),
        )
        artifact = tmp / "index.npz"
        save_index(index, artifact)
    else:
        artifact = build_shards(
            live, DIST, num_shards=num_shards, out_dir=tmp / "bundle",
            num_vantage_points=4, branching=4, seed=0,
        )
    return db, dbp, artifact


def _open(tmp: Path, dbp, artifact):
    return repro.open_index(
        artifact, dbp, mutable=True, journal=tmp / "m.journal",
    )


def _mutate(mutable, db, inserts=2, delete=2):
    for g in range(18, 18 + inserts):
        mutable.insert(db[g], db.features[g])
    if delete is not None:
        mutable.delete(delete)


def _state(mutable):
    """The logical database state a reopen must reproduce exactly."""
    theta = mutable.ladder.values[1]
    result = mutable.query(lambda g: True, theta, 4)
    return (
        len(mutable.database),
        frozenset(mutable.database.deleted),
        result.answer, result.gains, result.covered, result.num_relevant,
    )


# ---------------------------------------------------------------------------
# Checkpoint
# ---------------------------------------------------------------------------
class TestCheckpoint:
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_folds_journal_and_reopens_identical(self, tmp_path, num_shards):
        db, dbp, artifact = _deployment(tmp_path, num_shards)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=3)
        before = _state(mutable)
        report = mutable.checkpoint()
        assert report["generation"] == 1
        assert report["folded_records"] == 4
        assert report["carried_records"] == 0
        # The live journal shrank to zero mutation records...
        assert mutable.journal.num_records == 0
        assert (tmp_path / report["base"]).exists()
        # ...and the serving state did not move.
        assert _state(mutable) == before
        mutable.close()
        # Reopen resolves the generation-1 base pinned in the header.
        reopened = _open(tmp_path, dbp, artifact)
        assert reopened.journal.generation == 1
        assert reopened.journal.num_records == 0
        assert _state(reopened) == before
        assert reopened.stats()["delta"]["journal_generation"] == 1
        reopened.close()

    def test_zero_record_checkpoint_is_valid(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        before = _state(mutable)
        report = mutable.checkpoint()
        assert report["folded_records"] == 0
        mutable.close()
        reopened = _open(tmp_path, dbp, artifact)
        assert reopened.journal.generation == 1
        assert _state(reopened) == before
        reopened.close()

    def test_second_generation_drops_old_base(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=1)
        first = mutable.checkpoint()
        mutable.insert(db[20], db.features[20])
        mutable.delete(5)
        before = _state(mutable)
        second = mutable.checkpoint()
        assert second["generation"] == 2
        assert second["folded_records"] == 2
        assert not (tmp_path / first["base"]).exists()
        assert (tmp_path / second["base"]).exists()
        mutable.close()
        reopened = _open(tmp_path, dbp, artifact)
        assert reopened.journal.generation == 2
        assert _state(reopened) == before
        reopened.close()

    def test_mutations_after_checkpoint_replay_onto_new_base(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=2)
        mutable.checkpoint()
        mutable.insert(db[21], db.features[21])
        mutable.delete(7)
        assert mutable.journal.num_records == 2
        before = _state(mutable)
        mutable.close()
        reopened = _open(tmp_path, dbp, artifact)
        assert reopened.journal.num_records == 2
        assert _state(reopened) == before
        reopened.close()

    @pytest.mark.parametrize("site, committed", [
        ("durability.checkpoint.base", False),
        ("durability.checkpoint.journal", False),
        ("durability.checkpoint.commit", True),
    ])
    def test_crash_reopens_consistent(self, tmp_path, site, committed):
        db, dbp, artifact = _deployment(tmp_path, 4)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=2)
        before = _state(mutable)
        faults.install(faults.FaultPlan(kill_site=site))
        try:
            with pytest.raises(CheckpointError) as excinfo:
                mutable.checkpoint()
        finally:
            faults.clear()
        assert isinstance(excinfo.value.__cause__, faults.SimulatedCrash)
        mutable.close()
        # Whatever the crash point, base + journal = database holds.
        reopened = _open(tmp_path, dbp, artifact)
        if committed:  # crash after the rename: the new generation won
            assert reopened.journal.generation == 1
            assert reopened.journal.num_records == 0
        else:  # crash before the rename: the old generation survives
            assert reopened.journal.generation == 0
            assert reopened.journal.num_records == 3
        assert _state(reopened) == before
        reopened.close()

    def test_checkpoint_offline(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=2)
        before = _state(mutable)
        mutable.close()
        report = checkpoint_offline(dbp, tmp_path / "m.journal")
        assert report["generation"] == 1
        assert report["folded_records"] == 3
        reopened = _open(tmp_path, dbp, artifact)
        assert reopened.journal.generation == 1
        assert reopened.journal.num_records == 0
        assert _state(reopened) == before
        reopened.close()

    def test_checkpointed_journal_refuses_loaded_database(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        mutable.checkpoint()
        mutable.close()
        with pytest.raises(JournalError, match="pass database as a path"):
            repro.open_index(
                artifact, load_database(dbp), mutable=True,
                journal=tmp_path / "m.journal",
            )

    def test_tampered_base_refused_on_reopen(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=1)
        report = mutable.checkpoint()
        mutable.close()
        base_path = tmp_path / report["base"]
        raw = bytearray(base_path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        base_path.write_bytes(bytes(raw))
        with pytest.raises(JournalError, match="crc32"):
            _open(tmp_path, dbp, artifact)


# ---------------------------------------------------------------------------
# Journal recovery (torn writes, partial records, duplicated tails)
# ---------------------------------------------------------------------------
class TestJournalRecovery:
    def _journal_with(self, tmp_path, n_deletes: int) -> Path:
        path = tmp_path / "j"
        journal = MutationJournal(path)
        for gid in range(n_deletes):
            journal.append_delete(gid)
        journal.close()
        return path

    def test_torn_tail_truncation_is_byte_exact(self, tmp_path):
        path = self._journal_with(tmp_path, 3)
        pristine = path.read_bytes()
        with path.open("ab") as handle:
            handle.write(b'{"record": {"op": "delete", "gid"')
        with pytest.warns(RuntimeWarning, match="torn final journal"):
            reopened = MutationJournal(path)
        assert reopened.num_records == 3
        reopened.close()
        assert path.read_bytes() == pristine

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_truncation_at_any_byte_recovers_prefix_or_types(
        self, tmp_path_factory, data
    ):
        """Cut the journal at an arbitrary byte: reopen must land
        bit-identically on the surviving record prefix, or raise a typed
        JournalError — never a silent wrong answer."""
        tmp = tmp_path_factory.mktemp("torn")
        n = data.draw(st.integers(1, 4), label="records")
        path = self._journal_with(tmp, n)
        pristine = path.read_bytes()
        boundaries = [0]
        for line in pristine.splitlines(keepends=True):
            boundaries.append(boundaries[-1] + len(line))
        cut = data.draw(st.integers(0, len(pristine)), label="cut")
        with path.open("r+b") as handle:
            handle.truncate(cut)
        complete_lines = sum(1 for b in boundaries[1:] if b <= cut)
        keep = max(b for b in boundaries if b <= cut)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            if complete_lines == 0:  # the header itself is gone: typed
                with pytest.raises(JournalError):
                    MutationJournal(path)
            else:
                reopened = MutationJournal(path)
                assert reopened.num_records == complete_lines - 1
                reopened.close()
                assert path.read_bytes() == pristine[:keep]

    def test_bit_flip_in_nonfinal_record_is_corruption(self, tmp_path):
        path = self._journal_with(tmp_path, 3)
        lines = path.read_bytes().splitlines(keepends=True)
        flipped = bytearray(lines[2])
        flipped[10] ^= 0x01
        lines[2] = bytes(flipped)
        path.write_bytes(b"".join(lines))
        report = scan_journal(path)
        assert report["problems"]
        with pytest.raises(JournalError, match="corrupt, not torn"):
            MutationJournal(path)

    def test_duplicated_insert_tail_is_detected_on_replay(self, tmp_path):
        db = random_database(seed=31, size=6, num_features=3)
        save_database(db, tmp_path / "db.jsonl")
        rng = np.random.default_rng(5)
        path = tmp_path / "j"
        journal = MutationJournal(path)
        journal.append_insert(
            6, random_connected_graph(rng, 4), rng.random(3)
        )
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines) + lines[-1])  # duplicated tail
        reopened = MutationJournal(path)  # both copies pass their crc...
        assert reopened.num_records == 2
        with pytest.raises(JournalError, match="disagree"):
            reopened.replay_into(load_database(tmp_path / "db.jsonl"))
        reopened.close()

    def test_duplicated_delete_tail_is_idempotent(self, tmp_path):
        db = random_database(seed=32, size=6, num_features=3)
        save_database(db, tmp_path / "db.jsonl")
        path = self._journal_with(tmp_path, 1)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines) + lines[-1])
        reopened = MutationJournal(path)
        replayed = load_database(tmp_path / "db.jsonl")
        counts = reopened.replay_into(replayed)
        assert counts["deletes"] == 2  # replayed twice, same state
        assert set(replayed.deleted) == {0}
        reopened.close()

    def test_scan_journal_reports_without_mutating(self, tmp_path):
        path = self._journal_with(tmp_path, 2)
        with path.open("ab") as handle:
            handle.write(b'{"torn')
        before = path.read_bytes()
        report = scan_journal(path)
        assert report["records"] == 2
        assert report["torn_tail"] is True
        assert report["problems"] == []
        assert path.read_bytes() == before  # audit never truncates


# ---------------------------------------------------------------------------
# Backup / restore
# ---------------------------------------------------------------------------
class TestBackupRestore:
    def _backed_up(self, tmp_path, *, num_shards=4):
        db, dbp, artifact = _deployment(tmp_path, num_shards)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=2)
        state = _state(mutable)
        report = create_backup(
            tmp_path / "bk",
            database=dbp, journal=tmp_path / "m.journal",
            shards=artifact if num_shards > 1 else None,
            index=None if num_shards > 1 else artifact,
            latch=mutable.latch,
        )
        mutable.close()
        return db, dbp, artifact, state, report

    def test_roundtrip_restores_byte_identical_deployment(self, tmp_path):
        db, dbp, artifact, state, report = self._backed_up(tmp_path)
        assert set(report["roles"]) == {
            "database", "journal", "manifest", "shard",
        }
        assert verify_backup(tmp_path / "bk")["ok"]
        restore_backup(tmp_path / "bk", tmp_path / "restored")
        for name in ("base.jsonl", "m.journal"):
            assert (tmp_path / "restored" / name).read_bytes() == (
                tmp_path / "bk" / name
            ).read_bytes()
        # The restored deployment opens and answers identically.
        restored = repro.open_index(
            tmp_path / "restored" / "manifest.json",
            tmp_path / "restored" / "base.jsonl",
            mutable=True, journal=tmp_path / "restored" / "m.journal",
        )
        assert _state(restored) == state
        restored.close()

    def test_backup_after_checkpoint_carries_pinned_base(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=1)
        report = mutable.checkpoint()
        state = _state(mutable)
        create_backup(
            tmp_path / "bk", journal=tmp_path / "m.journal",
            index=artifact, latch=mutable.latch,
        )
        mutable.close()
        # The generation base travels instead of the original database.
        names = {p.name for p in (tmp_path / "bk").iterdir()}
        assert report["base"] in names
        assert "base.jsonl" not in names
        restore_backup(tmp_path / "bk", tmp_path / "restored")
        restored = repro.open_index(
            tmp_path / "restored" / "index.npz",
            tmp_path / "restored" / "nonexistent.jsonl",  # base is pinned
            mutable=True, journal=tmp_path / "restored" / "m.journal",
        )
        assert _state(restored) == state
        restored.close()

    def test_bit_flip_fails_verify_and_blocks_restore(self, tmp_path):
        self._backed_up(tmp_path)
        victim = tmp_path / "bk" / "base.jsonl"
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 3] ^= 0x04
        victim.write_bytes(bytes(raw))
        report = verify_backup(tmp_path / "bk")
        assert not report["ok"]
        assert any("crc32 mismatch" in p for p in report["problems"])
        with pytest.raises(RestoreError, match="verification"):
            restore_backup(tmp_path / "bk", tmp_path / "restored")
        assert not (tmp_path / "restored").exists()

    def test_existing_destinations_and_targets_are_refused(self, tmp_path):
        db, dbp, artifact, state, _ = self._backed_up(tmp_path, num_shards=1)
        with pytest.raises(BackupError, match="already exists"):
            create_backup(tmp_path / "bk", database=dbp)
        (tmp_path / "occupied").mkdir()
        with pytest.raises(RestoreError, match="force"):
            restore_backup(tmp_path / "bk", tmp_path / "occupied")
        report = restore_backup(
            tmp_path / "bk", tmp_path / "occupied", force=True
        )
        assert report["forced"] is True
        assert (tmp_path / "occupied" / "m.journal").exists()

    def test_gen0_journal_without_database_is_refused(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        mutable.close()
        with pytest.raises(BackupError, match="generation-0"):
            create_backup(tmp_path / "bk", journal=tmp_path / "m.journal")

    @pytest.mark.parametrize("site", [
        "durability.backup.copy", "durability.backup.manifest",
    ])
    def test_backup_crash_leaves_no_partial_archive(self, tmp_path, site):
        db, dbp, artifact = _deployment(tmp_path, 1)
        faults.install(faults.FaultPlan(kill_site=site))
        try:
            with pytest.raises(faults.SimulatedCrash):
                create_backup(tmp_path / "bk", database=dbp, index=artifact)
        finally:
            faults.clear()
        assert not (tmp_path / "bk").exists()
        assert not list(tmp_path.glob("bk.tmp-*"))  # staging cleaned up

    def test_restore_crash_leaves_no_partial_destination(self, tmp_path):
        db, dbp, artifact, state, _ = self._backed_up(tmp_path, num_shards=1)
        faults.install(
            faults.FaultPlan(kill_site="durability.restore.install")
        )
        try:
            with pytest.raises(faults.SimulatedCrash):
                restore_backup(tmp_path / "bk", tmp_path / "restored")
        finally:
            faults.clear()
        assert not (tmp_path / "restored").exists()

    def test_verify_deployment_dispatch(self, tmp_path):
        db, dbp, artifact, state, _ = self._backed_up(tmp_path)
        assert verify_deployment(tmp_path / "bk")["ok"]
        assert verify_deployment(artifact)["ok"]  # manifest.json
        assert verify_deployment(artifact.parent)["ok"]  # bundle dir
        assert verify_deployment(dbp)["ok"]  # database JSONL
        assert verify_deployment(tmp_path / "m.journal")["ok"]
        assert not verify_deployment(tmp_path / "absent")["ok"]
        shard = next(artifact.parent.glob("*.npz"))
        assert verify_deployment(shard)["ok"]
        raw = bytearray(shard.read_bytes())
        raw[len(raw) // 2] ^= 0x10
        shard.write_bytes(bytes(raw))
        assert not verify_deployment(shard)["ok"]
        assert not verify_deployment(artifact.parent)["ok"]


# ---------------------------------------------------------------------------
# Scrubber
# ---------------------------------------------------------------------------
class TestScrubber:
    def _flip(self, path: Path, at_fraction=0.5):
        raw = bytearray(path.read_bytes())
        raw[int(len(raw) * at_fraction)] ^= 0x01
        path.write_bytes(bytes(raw))

    def test_clean_deployment_scrubs_clean(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 4)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=2)
        scrubber = Scrubber(mutable, database_path=dbp)
        report = scrubber.scrub_once(raise_errors=True)
        # journal + database + manifest + 4 shards
        assert report["files"] == 7
        assert report["records"] == 3
        assert report["corruptions"] == []
        assert scrubber.status()["cycles"] == 1
        mutable.close()

    def test_detects_and_heals_shard_flip_from_loaded_object(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 4)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=2)
        before = _state(mutable)
        victim = sorted(artifact.parent.glob("*.npz"))[1]
        self._flip(victim)
        scrubber = Scrubber(mutable, database_path=dbp)
        report = scrubber.scrub_once(raise_errors=True)
        assert len(report["corruptions"]) == 1
        assert len(report["healed"]) == 1
        # Healed for real: the bundle re-verifies and queries never moved.
        assert verify_deployment(artifact.parent)["ok"]
        assert scrubber.scrub_once(raise_errors=True)["corruptions"] == []
        assert _state(mutable) == before
        mutable.close()
        reopened = _open(tmp_path, dbp, artifact)
        assert _state(reopened) == before
        reopened.close()

    def test_detects_and_heals_manifest_flip(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 4)
        mutable = _open(tmp_path, dbp, artifact)
        self._flip(artifact, at_fraction=0.3)
        scrubber = Scrubber(mutable, database_path=dbp)
        report = scrubber.scrub_once(raise_errors=True)
        assert len(report["corruptions"]) == 1
        assert len(report["healed"]) == 1
        ShardManifest.load(artifact)  # parses again
        mutable.close()

    def test_every_single_bit_flip_in_shard_is_detected(self, tmp_path):
        """Exhaustive over bit positions in a sampled stride: crc32 (and
        the manifest's self-check) catch 100% of single-bit flips."""
        db, dbp, artifact = _deployment(tmp_path, 2)
        shard = sorted(artifact.parent.glob("*.npz"))[0]
        pristine = shard.read_bytes()
        entry = [
            e for e in ShardManifest.load(artifact).shards
            if (artifact.parent / e.path) == shard
        ][0]
        n = len(pristine)
        for offset in range(0, n, max(1, n // 64)):
            for bit in (0x01, 0x80):
                raw = bytearray(pristine)
                raw[offset] ^= bit
                assert zlib.crc32(bytes(raw)) != entry.checksum, (
                    f"flip at byte {offset} bit {bit:#x} went undetected"
                )

    def test_journal_corruption_escalates_never_heals(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=2)
        journal_path = tmp_path / "m.journal"
        lines = journal_path.read_bytes().splitlines(keepends=True)
        flipped = bytearray(lines[1])  # first mutation record, not final
        flipped[12] ^= 0x01
        lines[1] = bytes(flipped)
        journal_path.write_bytes(b"".join(lines))
        scrubber = Scrubber(mutable, database_path=dbp)
        report = scrubber.scrub_once()
        assert len(report["corruptions"]) == 1
        assert report["healed"] == []
        assert any("restore from backup" in e for e in report["escalations"])
        with pytest.raises(ScrubError, match="unhealable"):
            scrubber.scrub_once(raise_errors=True)
        mutable.close()

    def test_pinned_base_flip_escalates(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=1)
        report = mutable.checkpoint()
        self._flip(tmp_path / report["base"])
        scrubber = Scrubber(mutable)
        cycle = scrubber.scrub_once()
        assert any("crc32 pinned" in c for c in cycle["corruptions"])
        assert cycle["healed"] == []
        mutable.close()

    def test_torn_tail_is_counted_not_flagged(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        _mutate(mutable, db, inserts=1)
        with (tmp_path / "m.journal").open("ab") as handle:
            handle.write(b'{"record": {"op": "del')
        scrubber = Scrubber(mutable, database_path=dbp)
        report = scrubber.scrub_once(raise_errors=True)
        assert report["corruptions"] == []
        assert scrubber.status()["torn_tails"] == 1
        mutable.close()

    def test_heals_shard_from_live_replica_byte_identical(self, tmp_path):
        from repro.graphs import quartile_relevance
        from repro.index.pivec import ThresholdLadder

        database = random_database(seed=19, size=24, num_features=3)
        artifact = build_shards(
            database, DIST, num_shards=2, out_dir=tmp_path / "bundle",
            num_vantage_points=4, branching=4, seed=0,
            thresholds=ThresholdLadder([2.0, 4.0, 8.0, 16.0, 32.0]),
        )
        victim = sorted(artifact.parent.glob("*.npz"))[0]
        pristine = victim.read_bytes()
        with ReplicatedIndex.open(
            artifact, database, DIST, replicas=1,
        ) as rep:
            fn = quartile_relevance(database, quantile=0.5)
            before = rep.query(fn, 8.0, 3)
            self._flip(victim)
            scrubber = Scrubber(rep)
            report = scrubber.scrub_once(raise_errors=True)
            assert len(report["healed"]) == 1
            assert "replica" in report["healed"][0]
            # The workers held the original bytes: byte-identical heal,
            # manifest untouched, in-flight queries never interrupted.
            assert victim.read_bytes() == pristine
            after = rep.query(fn, 8.0, 3)
            assert after.answer == before.answer
            assert after.gains == before.gains

    def test_background_thread_lifecycle(self, tmp_path):
        db, dbp, artifact = _deployment(tmp_path, 1)
        mutable = _open(tmp_path, dbp, artifact)
        scrubber = Scrubber(mutable, interval_s=0.02, database_path=dbp)
        scrubber.start()
        assert scrubber.running
        deadline = time.monotonic() + 5.0
        while (
            scrubber.status()["cycles"] < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        scrubber.stop()
        assert not scrubber.running
        assert scrubber.status()["cycles"] >= 2
        assert scrubber.status()["corruptions"] == 0
        mutable.close()


# ---------------------------------------------------------------------------
# Crash-log rotation (service satellite)
# ---------------------------------------------------------------------------
class TestCrashlogRotation:
    def _crash(self, journal, n):
        for i in range(n):
            try:
                raise ValueError(f"boom {i} " + "x" * 120)
            except ValueError as error:
                journal.record(None, error)

    def test_rotates_at_size_bound_keeping_n(self, tmp_path):
        path = tmp_path / "crash.log"
        journal = CrashJournal(path, max_bytes=2048, keep_rotated=2)
        self._crash(journal, 12)
        assert journal.rotations >= 2
        assert path.exists()
        assert Path(f"{path}.1").exists()
        assert Path(f"{path}.2").exists()
        assert not Path(f"{path}.3").exists()  # oldest dropped
        assert path.stat().st_size <= 2048
        for logfile in (path, Path(f"{path}.1"), Path(f"{path}.2")):
            for line in logfile.read_text().splitlines():
                json.loads(line)  # every surviving line is intact JSON
        assert journal.stats()["rotations"] == journal.rotations

    def test_unbounded_log_never_rotates(self, tmp_path):
        path = tmp_path / "crash.log"
        journal = CrashJournal(path, max_bytes=None)
        self._crash(journal, 8)
        assert journal.rotations == 0
        assert not Path(f"{path}.1").exists()


# ---------------------------------------------------------------------------
# Service admin ops
# ---------------------------------------------------------------------------
class TestServiceDurabilityOps:
    def test_checkpoint_backup_scrub_over_the_wire(self, tmp_path):
        from repro.service import QueryService, parse_request

        db, dbp, artifact = _deployment(tmp_path, 1)
        svc = QueryService.open(
            dbp, index_path=artifact, mutable=True,
            journal=tmp_path / "m.journal",
        )
        with svc:
            insert_line = json.dumps({
                "id": 1, "op": "insert",
                "graph": _wire_graph(db, 20), "features": [0.1, 0.2, 0.3],
            })
            response = svc.call(parse_request(insert_line))
            assert response["ok"], response
            response = svc.call(parse_request('{"id": 2, "op": "checkpoint"}'))
            assert response["ok"], response
            assert response["result"]["generation"] == 1
            assert svc.manager.index.journal.num_records == 0
            backup_line = json.dumps({
                "id": 3, "op": "backup", "path": str(tmp_path / "bk"),
            })
            response = svc.call(parse_request(backup_line))
            assert response["ok"], response
            assert verify_backup(tmp_path / "bk")["ok"]
            response = svc.call(parse_request('{"id": 4, "op": "scrub"}'))
            assert response["ok"], response
            assert response["result"]["corruptions"] == []
            response = svc.call(
                parse_request('{"id": 5, "op": "scrub_status"}')
            )
            assert response["ok"], response
            assert response["result"]["cycles"] == 1
        stats = svc.stats()
        assert stats["scrub"]["cycles"] == 1

    def test_backup_needs_path_and_checkpoint_needs_journal(self, tmp_path):
        from repro.service import InvalidRequest, QueryService, parse_request

        with pytest.raises(InvalidRequest, match="backup needs a 'path'"):
            parse_request('{"op": "backup"}')
        db, dbp, artifact = _deployment(tmp_path, 1)
        svc = QueryService.open(dbp, index_path=artifact)
        with svc:
            response = svc.call(parse_request('{"id": 1, "op": "checkpoint"}'))
            assert not response["ok"]
            assert response["error"]["code"] == "invalid_request"


def _wire_graph(db, gid):
    from repro.graphs.io import graph_to_dict

    return graph_to_dict(db[gid])

"""Exact GED (A*) tests: hand-verified distances, limits, edit paths."""

import pytest

from repro.ged import ExactGED, edit_path_cost
from repro.ged.costs import CustomCostModel
from repro.graphs import LabeledGraph, cycle_graph, path_graph, star_graph

ged = ExactGED()


class TestKnownDistances:
    def test_identical_graphs(self):
        g = cycle_graph(["C", "N", "O"])
        assert ged(g, g) == 0.0

    def test_single_relabel(self):
        a = path_graph(["C", "C", "O"])
        b = path_graph(["C", "C", "N"])
        assert ged(a, b) == 1.0

    def test_node_insertion(self):
        a = path_graph(["C", "C"])
        b = path_graph(["C", "C", "C"])
        # one node insert + one edge insert
        assert ged(a, b) == 2.0

    def test_edge_deletion(self):
        a = cycle_graph(["C", "C", "C"])
        b = path_graph(["C", "C", "C"])
        assert ged(a, b) == 1.0

    def test_empty_to_graph(self):
        a = LabeledGraph([])
        b = path_graph(["C", "N"])
        assert ged(a, b) == 3.0  # two nodes + one edge

    def test_disjoint_labels(self):
        a = path_graph(["A", "A"])
        b = path_graph(["B", "B"])
        assert ged(a, b) == 2.0  # relabel both, edge matches

    def test_edge_label_substitution(self):
        a = LabeledGraph(["C", "C"], [(0, 1, "-")])
        b = LabeledGraph(["C", "C"], [(0, 1, "=")])
        assert ged(a, b) == 1.0

    def test_star_vs_path(self):
        a = star_graph("C", ["C", "C", "C"])
        b = path_graph(["C", "C", "C", "C"])
        # Same labels and edge counts, different topology: rewire 1 edge =
        # delete + insert.
        assert ged(a, b) == 2.0


class TestProperties:
    def test_symmetry(self):
        a = cycle_graph(["C", "N", "O", "C"])
        b = star_graph("N", ["C", "O"])
        assert ged(a, b) == ged(b, a)

    def test_limit_short_circuits(self):
        a = path_graph(["A"] * 5)
        b = path_graph(["B"] * 5)
        assert ged(a, b, limit=2.0) == float("inf")

    def test_limit_equal_to_distance_passes(self):
        a = path_graph(["C", "C", "O"])
        b = path_graph(["C", "C", "N"])
        assert ged(a, b, limit=1.0) == 1.0

    def test_within(self):
        a = path_graph(["C", "C", "O"])
        b = path_graph(["C", "C", "N"])
        assert ged.within(a, b, 1.0)
        assert not ged.within(a, b, 0.5)


class TestCustomCosts:
    def test_cheap_substitution(self):
        costs = CustomCostModel(node_sub=0.5)
        a = path_graph(["C", "C", "O"])
        b = path_graph(["C", "C", "N"])
        assert ExactGED(costs)(a, b) == 0.5

    def test_expensive_edges(self):
        costs = CustomCostModel(edge_ins_del=3.0)
        a = cycle_graph(["C", "C", "C"])
        b = path_graph(["C", "C", "C"])
        assert ExactGED(costs)(a, b) == 3.0

    def test_metric_constraint_enforced(self):
        with pytest.raises(ValueError, match="metric"):
            CustomCostModel(node_sub=5.0, node_ins_del=1.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            CustomCostModel(node_sub=0.0)


class TestEditPathCost:
    def test_identity_mapping(self):
        g = path_graph(["C", "N", "O"])
        mapping = {0: 0, 1: 1, 2: 2}
        assert edit_path_cost(g, g, mapping) == 0.0

    def test_any_mapping_upper_bounds_exact(self):
        a = cycle_graph(["C", "N", "O"])
        b = path_graph(["C", "O", "N"])
        # Deliberately bad mapping.
        mapping = {0: 2, 1: 0, 2: 1}
        assert edit_path_cost(a, b, mapping) >= ged(a, b)

    def test_deletion_and_insertion(self):
        a = path_graph(["C", "C"])
        b = path_graph(["C"])
        mapping = {0: 0, 1: None}
        # delete node 1 and its edge
        assert edit_path_cost(a, b, mapping) == 2.0

    def test_incomplete_mapping_rejected(self):
        a = path_graph(["C", "C"])
        with pytest.raises(ValueError, match="cover"):
            edit_path_cost(a, a, {0: 0})

    def test_non_injective_rejected(self):
        a = path_graph(["C", "C"])
        with pytest.raises(ValueError, match="injective"):
            edit_path_cost(a, a, {0: 0, 1: 0})

"""PR 10 cascade gates: config validation, ε = 0 bit-identity, call
reduction, counter dedup, ε-approximate semantics, and the wire.

The load-bearing claims under test:

* **Dual-run identity** — with ε = 0, a cascade of *any* stage subset or
  ordering answers bit-identically (ids, gains, selection order,
  coverage) to the current pipeline, at S = 1 (``NBIndex``) and S = 4
  (``ShardedIndex``).
* **Call reduction** — enabling the EmbAssi-style assignment stage
  strictly reduces exact-distance evaluations, asserted via stats.
* **Counter dedup** — a candidate window followed by a prefiltered
  ``within`` emits ``cascade.vantage.block_evals`` exactly once (the
  ``filter.block_evals`` double-count regression).
* **ε semantics** — relaxed answers keep the no-false-positive sandwich
  ``N_{(1−ε)θ} ⊆ N' ⊆ N_θ`` and are flagged ``approximate`` end to end.
* **The wire** — unknown stages and malformed epsilons are typed
  ``invalid_request`` rejections (never breaker hits) at S ∈ {1, 4} and
  under ``--replicas 2``.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.cascade import (
    DEFAULT_STAGES,
    FULL_STAGES,
    KNOWN_STAGES,
    CascadeConfig,
    CascadeConfigError,
    FilterCascade,
    resolve_cascade,
    runtime_for,
)
from repro.cascade.stages import BLOCK_EVALS
from repro.engine import DistanceEngine
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex
from repro.service import (
    InvalidRequest,
    QueryRequest,
    QueryService,
    parse_request,
    serve_lines,
)
from repro.shard import ShardedIndex, build_shards
from tests.conftest import random_database

BUILD = dict(num_vantage_points=5, branching=4, seed=7)


@pytest.fixture(scope="module")
def db():
    return random_database(seed=21, size=48)


@pytest.fixture(scope="module")
def index(db):
    return NBIndex.build(db, StarDistance(), **BUILD)


@pytest.fixture(scope="module")
def relevance(db):
    return quartile_relevance(db)


@pytest.fixture(scope="module")
def bundle(db, tmp_path_factory):
    out = tmp_path_factory.mktemp("cascade-bundle")
    return build_shards(
        db, StarDistance(), num_shards=4, out_dir=out, seed=7,
        num_vantage_points=5, branching=4,
    )


@pytest.fixture(scope="module")
def sharded(bundle, db):
    idx = ShardedIndex.load(bundle, db, StarDistance())
    yield idx
    idx.close()


def assert_same_result(got, want):
    assert got.answer == want.answer
    assert got.gains == want.gains
    assert got.covered == want.covered
    assert got.num_relevant == want.num_relevant


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
class TestCascadeConfig:
    def test_default_is_legacy(self):
        config = CascadeConfig()
        assert config.stages == DEFAULT_STAGES == ("vantage",)
        assert config.epsilon == 0.0
        assert config.is_default()
        assert not config.approximate

    def test_full_stages_cover_catalog(self):
        assert FULL_STAGES == KNOWN_STAGES
        assert set(DEFAULT_STAGES) <= set(KNOWN_STAGES)

    @pytest.mark.parametrize("stages", [
        (), ("label_size",), ("assignment", "vantage"), FULL_STAGES,
        ("vantage", "star", "assignment", "label_size"),
    ])
    def test_any_subset_and_order_is_legal(self, stages):
        config = CascadeConfig(stages=stages)
        assert config.stages == tuple(stages)

    @pytest.mark.parametrize("stages", [
        ("bogus",), ("vantage", "vantage"), ("label_size", "LABEL_SIZE"[:0] + "bogus"),
    ])
    def test_bad_stages_rejected(self, stages):
        with pytest.raises(CascadeConfigError):
            CascadeConfig(stages=stages)

    @pytest.mark.parametrize("epsilon", [-0.1, 1.0, 1.5, float("nan"), "x"])
    def test_bad_epsilon_rejected(self, epsilon):
        with pytest.raises(CascadeConfigError):
            CascadeConfig(epsilon=epsilon)

    def test_generation_theta(self):
        config = CascadeConfig(epsilon=0.25)
        assert config.generation_theta(8.0) == pytest.approx(6.0)
        assert config.approximate

    def test_wire_round_trip(self):
        config = CascadeConfig(stages=("label_size", "vantage"), epsilon=0.05)
        assert CascadeConfig.from_wire(config.to_wire()) == config
        assert json.loads(json.dumps(config.to_wire())) == config.to_wire()

    @pytest.mark.parametrize("payload", [
        "vantage",                      # not an object
        {"stages": "vantage"},          # stages not a list
        {"stages": [1]},                # non-string stage
        {"stages": ["vantage"], "x": 1},  # unknown key
        {"epsilon": 2.0},               # out of range
    ])
    def test_bad_wire_rejected(self, payload):
        with pytest.raises(CascadeConfigError):
            CascadeConfig.from_wire(payload)

    @pytest.mark.parametrize("spec, stages", [
        ("full", FULL_STAGES),
        ("default", DEFAULT_STAGES),
        ("none", ()),
        ("exact", ()),
        ("label_size,assignment", ("label_size", "assignment")),
        (None, DEFAULT_STAGES),
    ])
    def test_parse_specs(self, spec, stages):
        assert CascadeConfig.parse(spec).stages == stages

    def test_parse_rejects_unknown(self):
        with pytest.raises(CascadeConfigError):
            CascadeConfig.parse("label_size,warp_drive")

    def test_resolve_none_is_legacy_hot_path(self):
        assert resolve_cascade(None, 0.0) is None
        assert runtime_for(None, 0.0) is None

    def test_resolve_epsilon_alone_activates(self):
        config = resolve_cascade(None, 0.05)
        assert config is not None
        assert config.stages == DEFAULT_STAGES and config.epsilon == 0.05

    def test_resolve_accepts_every_surface(self):
        want = CascadeConfig(stages=FULL_STAGES)
        assert resolve_cascade("full") == want
        assert resolve_cascade(list(FULL_STAGES)) == want
        assert resolve_cascade({"stages": list(FULL_STAGES)}) == want
        assert resolve_cascade(want) is want
        runtime = runtime_for("full", 0.0)
        assert isinstance(runtime, FilterCascade)
        with pytest.raises(CascadeConfigError):
            resolve_cascade(42)


# ---------------------------------------------------------------------------
# ε = 0 dual-run bit-identity (the enforced gate)
# ---------------------------------------------------------------------------
SUBSETS = [
    (),
    ("label_size",),
    ("assignment", "vantage"),
    FULL_STAGES,
    ("vantage", "star", "assignment", "label_size"),
]


class TestBitIdentity:
    @pytest.mark.parametrize("theta", [6.0, 9.0])
    @pytest.mark.parametrize("stages", SUBSETS)
    def test_single_index(self, index, relevance, theta, stages):
        want = index.query(relevance, theta, 4)
        got = index.query(
            relevance, theta, 4, cascade=CascadeConfig(stages=stages),
        )
        assert_same_result(got, want)
        assert not got.stats.approximate
        assert got.stats.epsilon == 0.0

    @pytest.mark.parametrize("theta", [6.0, 9.0])
    @pytest.mark.parametrize("stages", SUBSETS)
    def test_sharded_s4(self, sharded, relevance, theta, stages):
        want = sharded.query(relevance, theta, 4)
        got = sharded.query(
            relevance, theta, 4, cascade=CascadeConfig(stages=stages),
        )
        assert_same_result(got, want)
        assert not got.stats.approximate

    def test_explicit_default_matches_implicit(self, index, relevance):
        """An explicit vantage-only config runs through the pipeline
        object yet stays bit-identical to the engine-held default."""
        want = index.query(relevance, 8.0, 3)
        got = index.query(relevance, 8.0, 3, cascade=CascadeConfig())
        assert_same_result(got, want)
        assert set(got.stats.cascade) <= set(KNOWN_STAGES)

    def test_engine_masks_identical_for_every_subset(self, db, index):
        engine = index.engine
        targets = list(range(len(db)))
        for theta in (5.0, 8.0):
            for gid in range(0, len(db), 7):
                want = engine.within(gid, targets, theta)
                for stages in SUBSETS:
                    runtime = FilterCascade(CascadeConfig(stages=stages))
                    got = engine.within(gid, targets, theta, cascade=runtime)
                    assert np.array_equal(got, want), (gid, theta, stages)


# ---------------------------------------------------------------------------
# Exact-distance call reduction (assignment stage enabled)
# ---------------------------------------------------------------------------
EMBASSI = CascadeConfig(stages=("label_size", "assignment", "vantage"))


def _fresh_engine(db, index):
    engine = DistanceEngine(StarDistance(), graphs=db.graphs)
    engine.attach_embedding(index.embedding)
    return engine

class TestCallReduction:
    def test_engine_evaluations_strictly_reduced(self, db, index):
        theta = 8.0
        targets = list(range(len(db)))
        baseline = _fresh_engine(db, index)
        filtered = _fresh_engine(db, index)
        runtime = FilterCascade(EMBASSI)
        for gid in range(len(db)):
            want = baseline.within(gid, targets, theta)
            got = filtered.within(gid, targets, theta, cascade=runtime)
            assert np.array_equal(got, want)
        assert filtered.evaluations < baseline.evaluations
        snap = runtime.snapshot()
        structural_prunes = (
            snap.get("label_size", {}).get("prunes", 0)
            + snap.get("assignment", {}).get("prunes", 0)
        )
        assert structural_prunes > 0
        assert snap["assignment"]["evals"] >= snap["assignment"]["prunes"]

    def test_query_exact_verifications_reduced(self, db, relevance):
        """Two identical fresh builds; only the cascade differs — fewer
        pairs reach exact verification (``engine.prefilter.verified``),
        and the pair cache never pays more evaluations."""
        plain = NBIndex.build(db, StarDistance(), **BUILD)
        cascaded = NBIndex.build(db, StarDistance(), **BUILD)
        theta = 4.0

        def verified(index, **kwargs):
            registry = obs.enable(fresh=True)
            try:
                result = index.query(relevance, theta, 4, **kwargs)
                count = registry.snapshot()["counters"]["engine.prefilter.verified"]
            finally:
                obs.disable()
            return result, count

        want, verified_plain = verified(plain)
        got, verified_cascaded = verified(cascaded, cascade=EMBASSI)
        assert_same_result(got, want)
        assert verified_cascaded < verified_plain
        assert got.stats.distance_calls <= want.stats.distance_calls
        assert got.stats.cascade["assignment"]["prunes"] > 0


# ---------------------------------------------------------------------------
# Counter dedup (the filter.block_evals regression)
# ---------------------------------------------------------------------------
class TestBlockEvalDedup:
    def test_prefiltered_within_counts_one_block_pass(self, db, index):
        engine, embedding = index.engine, index.embedding
        gid, theta = 0, 8.0
        among = np.arange(len(db))
        registry = obs.enable(fresh=True)
        try:
            window = embedding.candidates(gid, theta + 1e-9, among)
            targets = [int(g) for g in window]
            pre = engine.within(gid, targets, theta, prefiltered=True)
            counters = registry.snapshot()["counters"]
            assert counters.get(BLOCK_EVALS, 0) == 1
            assert "filter.block_evals" not in counters
            # The skipped lower pass provably rejects nothing: the mask
            # matches a full (non-prefiltered) run over the same window.
            full = engine.within(gid, targets, theta)
            counters = registry.snapshot()["counters"]
            assert counters.get(BLOCK_EVALS, 0) == 2
            assert counters["engine.prefilter.lower_rejections"] == 0
        finally:
            obs.disable()
        assert np.array_equal(pre, full)

    def test_legacy_counter_name_is_gone(self):
        import repro.index.vantage as vantage
        import repro.shard.frontier as frontier
        import inspect

        for module in (vantage, frontier):
            assert "filter.block_evals" not in inspect.getsource(module)


# ---------------------------------------------------------------------------
# ε > 0 approximate mode
# ---------------------------------------------------------------------------
class TestApproximateMode:
    def test_engine_sandwich(self, db, index):
        """ε-relaxed masks: no false positives vs θ, no misses vs (1−ε)θ."""
        engine = index.engine
        targets = list(range(len(db)))
        theta, epsilon = 8.0, 0.1
        for gid in range(0, len(db), 5):
            exact = engine.within(gid, targets, theta)
            inner = engine.within(gid, targets, (1 - epsilon) * theta)
            relaxed = engine.within(
                gid, targets, theta,
                cascade=FilterCascade(CascadeConfig(epsilon=epsilon)),
            )
            assert not np.any(relaxed & ~exact)   # N' ⊆ N_θ
            assert not np.any(inner & ~relaxed)   # N_{(1−ε)θ} ⊆ N'

    def test_query_flags_approximate(self, index, relevance):
        exact = index.query(relevance, 8.0, 4)
        got = index.query(relevance, 8.0, 4, epsilon=0.05)
        assert got.stats.approximate
        assert got.stats.epsilon == pytest.approx(0.05)
        assert not exact.stats.approximate
        assert len(got.answer) <= len(exact.answer)
        # Approximate coverage never exceeds what the exact run certifies.
        assert got.pi <= exact.pi + 1e-12

    def test_sharded_flags_approximate(self, sharded, relevance):
        got = sharded.query(relevance, 8.0, 4, epsilon=0.05)
        assert got.stats.approximate
        assert got.stats.epsilon == pytest.approx(0.05)


# ---------------------------------------------------------------------------
# The wire: service validation and round trips (S ∈ {1, 4}, replicas=2)
# ---------------------------------------------------------------------------
BAD_LINES = [
    '{"id": 1, "theta": 8.0, "k": 2, "cascade": "vantage"}',
    '{"id": 2, "theta": 8.0, "k": 2, "cascade": ["warp_drive"]}',
    '{"id": 3, "theta": 8.0, "k": 2, "cascade": ["vantage", "vantage"]}',
    '{"id": 4, "theta": 8.0, "k": 2, "cascade": [1]}',
    '{"id": 5, "theta": 8.0, "k": 2, "epsilon": "fast"}',
    '{"id": 6, "theta": 8.0, "k": 2, "epsilon": true}',
    '{"id": 7, "theta": 8.0, "k": 2, "epsilon": 1.0}',
    '{"id": 8, "theta": 8.0, "k": 2, "epsilon": -0.5}',
]


class TestWire:
    def test_parse_accepts_cascade_fields(self):
        req = parse_request(json.dumps({
            "id": 9, "theta": 8.0, "k": 2,
            "cascade": ["label_size", "assignment", "vantage"],
            "epsilon": 0.05,
        }))
        assert req.cascade == ("label_size", "assignment", "vantage")
        assert req.epsilon == pytest.approx(0.05)

    def test_parse_defaults(self):
        req = parse_request('{"id": 1, "theta": 8.0, "k": 2}')
        assert req.cascade is None and req.epsilon == 0.0

    @pytest.mark.parametrize("line", BAD_LINES)
    def test_malformed_rejected_before_admission(self, line):
        with pytest.raises(InvalidRequest):
            parse_request(line)

    def _assert_rejected_not_breaker(self, svc):
        """Run last: ``serve_lines`` drains the service when it returns."""
        lines = BAD_LINES + ['{"id": 99, "theta": 8.0, "k": 2}']
        out = io.StringIO()
        serve_lines(svc, iter(f"{ln}\n" for ln in lines), out)
        responses = [json.loads(ln) for ln in out.getvalue().splitlines()]
        for response in responses[:-1]:
            assert response["ok"] is False
            assert response["error"]["code"] == "invalid_request"
        # The breaker never saw a hit: the follow-up query runs normally.
        assert responses[-1]["ok"] is True
        assert responses[-1]["result"]["bound_only"] is False
        assert svc.stats()["breaker"]["state"] == "closed"

    def test_service_s1_rejects_and_round_trips(self, db, index, relevance):
        direct = index.query(
            relevance, 8.0, 3, cascade=CascadeConfig(stages=FULL_STAGES),
        )
        with QueryService(index) as svc:
            response = svc.call(QueryRequest(
                id=1, theta=8.0, k=3, cascade=FULL_STAGES,
            ))
            result = response["result"]
            assert result["answer"] == [int(g) for g in direct.answer]
            assert "approximate" not in result  # ε = 0 stays byte-identical
            approx = svc.call(QueryRequest(
                id=2, theta=8.0, k=3, epsilon=0.05,
            ))["result"]
            assert approx["approximate"] is True
            assert approx["epsilon"] == pytest.approx(0.05)
            self._assert_rejected_not_breaker(svc)

    def test_service_s4_rejects_and_round_trips(self, sharded, relevance):
        direct = sharded.query(
            relevance, 8.0, 3, cascade=CascadeConfig(stages=FULL_STAGES),
        )
        with QueryService(sharded) as svc:
            result = svc.call(QueryRequest(
                id=1, theta=8.0, k=3, cascade=FULL_STAGES,
            ))["result"]
            assert result["answer"] == [int(g) for g in direct.answer]
            assert "approximate" not in result
            self._assert_rejected_not_breaker(svc)

    def test_replicated_r2_rejects_and_round_trips(
        self, bundle, db, sharded, relevance,
    ):
        from repro.replica import ReplicatedIndex

        want = sharded.query(
            relevance, 8.0, 3, cascade=CascadeConfig(stages=FULL_STAGES),
        )
        with ReplicatedIndex.open(
            bundle, db, StarDistance(), replicas=2,
        ) as rep:
            got = rep.query(
                relevance, 8.0, 3, cascade=CascadeConfig(stages=FULL_STAGES),
            )
            assert_same_result(got, want)
            assert not got.stats.approximate
            approx = rep.query(relevance, 8.0, 3, epsilon=0.05)
            assert approx.stats.approximate
            assert approx.stats.epsilon == pytest.approx(0.05)
            with QueryService(rep) as svc:
                self._assert_rejected_not_breaker(svc)

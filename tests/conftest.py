"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import GraphDatabase, LabeledGraph, quartile_relevance
from repro.ged import StarDistance

LABELS = ("C", "N", "O", "S")


def random_connected_graph(rng, num_nodes: int, extra_edge_prob: float = 0.3) -> LabeledGraph:
    """A random connected labelled graph: spanning tree plus extras."""
    labels = [LABELS[int(rng.integers(len(LABELS)))] for _ in range(num_nodes)]
    edges = []
    for i in range(1, num_nodes):
        edges.append((i, int(rng.integers(i))))
    existing = set((min(u, v), max(u, v)) for u, v in edges)
    attempts = int(extra_edge_prob * num_nodes) + 1
    for _ in range(attempts):
        u = int(rng.integers(num_nodes))
        v = int(rng.integers(num_nodes))
        if u != v and (min(u, v), max(u, v)) not in existing:
            edges.append((u, v))
            existing.add((min(u, v), max(u, v)))
    return LabeledGraph(labels, edges)


def random_database(
    seed: int = 0,
    size: int = 60,
    min_nodes: int = 3,
    max_nodes: int = 8,
    num_features: int = 2,
) -> GraphDatabase:
    """A deterministic random database for cross-engine comparisons."""
    rng = np.random.default_rng(seed)
    graphs = [
        random_connected_graph(rng, int(rng.integers(min_nodes, max_nodes + 1)))
        for _ in range(size)
    ]
    return GraphDatabase(graphs, rng.random((size, num_features)))


@pytest.fixture
def small_db() -> GraphDatabase:
    return random_database(seed=11, size=40)


@pytest.fixture
def medium_db() -> GraphDatabase:
    return random_database(seed=12, size=90)


@pytest.fixture
def star_distance() -> StarDistance:
    return StarDistance()


@pytest.fixture
def relevance(small_db):
    # Low quantile so most graphs are relevant: denser neighborhoods make
    # greedy trajectories non-trivial.
    return quartile_relevance(small_db, quantile=0.3)

"""Dual-run equivalence gate: bitset hot paths vs the set-based reference.

The packed-bitset rewrite (:mod:`repro.bitset`) is only admissible if it
is invisible in the answers: same ids, same gains, same selection order,
same coverage — and the same work counters, since downstream analyses
read ``gain_evaluations``/``reheap_count`` as algorithm statistics, not
timings.  These tests run the retained pre-change implementation
(:mod:`repro.core.setgreedy`) against every bitset engine on identical
inputs: both greedy variants (with and without a range-query backend),
the NB-Index session (S=1) and the sharded coordinator (S=4).
"""

import numpy as np
import pytest

from repro.bench.hotpath import make_instance
from repro.core import (
    baseline_greedy,
    baseline_greedy_sets,
    lazy_greedy,
    lazy_greedy_sets,
)
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex


def assert_same_result(got, want):
    assert got.answer == want.answer
    assert got.gains == want.gains
    assert got.covered == want.covered
    assert got.num_relevant == want.num_relevant


@pytest.fixture(scope="module")
def graph_instance():
    from repro.datasets import GENERATORS

    db = GENERATORS["dud"](num_graphs=60, seed=5)
    return db, StarDistance(), quartile_relevance(db)


@pytest.fixture(scope="module")
def vector_instance():
    return make_instance(400, seed=11)


@pytest.mark.parametrize("theta", [4.0, 8.0, 12.0])
@pytest.mark.parametrize("k", [1, 3, 7])
def test_baseline_matches_set_reference(graph_instance, theta, k):
    db, dist, q = graph_instance
    want = baseline_greedy_sets(db, dist, q, theta, k)
    got = baseline_greedy(db, dist, q, theta, k)
    assert_same_result(got, want)
    assert got.stats.gain_evaluations == want.stats.gain_evaluations


@pytest.mark.parametrize("theta", [4.0, 8.0, 12.0])
@pytest.mark.parametrize("k", [1, 3, 7])
def test_lazy_matches_set_reference(graph_instance, theta, k):
    db, dist, q = graph_instance
    want = lazy_greedy_sets(db, dist, q, theta, k)
    got = lazy_greedy(db, dist, q, theta, k)
    assert_same_result(got, want)
    assert got.stats.gain_evaluations == want.stats.gain_evaluations
    assert got.stats.reheap_count == want.stats.reheap_count


def test_range_query_fast_path_is_identical(vector_instance):
    db, dist, query_fn, ladder, theta, range_query = vector_instance
    for k in (1, 5, 16):
        want = baseline_greedy_sets(
            db, dist, query_fn, theta, k, range_query=range_query
        )
        got = baseline_greedy(
            db, dist, query_fn, theta, k, range_query=range_query
        )
        assert_same_result(got, want)
        lazy = lazy_greedy(
            db, dist, query_fn, theta, k, range_query=range_query
        )
        assert_same_result(lazy, want)


def test_stop_on_zero_gain_matches(graph_instance):
    db, dist, q = graph_instance
    want = baseline_greedy_sets(db, dist, q, 3.0, 40, stop_on_zero_gain=True)
    got = baseline_greedy(db, dist, q, 3.0, 40, stop_on_zero_gain=True)
    assert_same_result(got, want)
    lazy = lazy_greedy(db, dist, q, 3.0, 40, stop_on_zero_gain=True)
    assert_same_result(lazy, want)


def test_engines_match_set_reference(vector_instance):
    db, dist, query_fn, ladder, theta, range_query = vector_instance
    k = 8
    want = baseline_greedy_sets(
        db, dist, query_fn, theta, k, range_query=range_query
    )

    index = NBIndex.build(
        db, dist, thresholds=ladder, seed=11,
        num_vantage_points=6, branching=12,
    )
    single = index.query(query_fn, theta, k)
    assert_same_result(single, want)

    import tempfile

    from repro.shard import ShardedIndex, build_shards

    with tempfile.TemporaryDirectory() as out_dir:
        manifest = build_shards(
            db, dist, num_shards=4, out_dir=out_dir, thresholds=ladder,
            seed=11, num_vantage_points=6, branching=12,
        )
        sharded = ShardedIndex.load(manifest, db, dist)
        got = sharded.query(query_fn, theta, k)
        sharded.invalidate_pools()
    assert_same_result(got, want)
    assert got.stats.coordinator["broadcast_words"] >= 0


def test_coverage_state_take_is_exact(vector_instance):
    """The shared take() helper reports the same gain the row had."""
    from repro.core.greedy import CoverageState

    db, dist, query_fn, ladder, theta, range_query = vector_instance
    relevant = [int(i) for i in db.relevant_indices(query_fn)]
    coverage = CoverageState.from_range_query(relevant, range_query, theta)
    gains_before = coverage.gains()
    order = np.argsort(-gains_before)[:5]
    answer, gains = [], []
    for position in order:
        expected = coverage.gain(int(position))
        got = coverage.take(int(position), answer, gains)
        assert got == expected
    assert gains == [int(g) for g in gains]
    assert coverage.covered_ids() == frozenset(
        gid
        for position in order
        for gid in coverage.universe.decode_ids(coverage.matrix[position])
    )

"""DisC baseline: covering + independence invariants, growth behaviour."""

import pytest

from repro.baselines import disc_greedy, is_valid_disc_answer
from repro.core import all_theta_neighborhoods, baseline_greedy
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from tests.conftest import random_database


def _setup(seed=0, size=60, quantile=0.3):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=quantile)
    return db, dist, q


class TestInvariants:
    @pytest.mark.parametrize("seed,theta", [(0, 4.0), (1, 6.0), (2, 3.0)])
    def test_covering_and_independent(self, seed, theta):
        db, dist, q = _setup(seed=seed)
        result = disc_greedy(db, dist, q, theta)
        relevant = [int(i) for i in db.relevant_indices(q)]
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
        assert is_valid_disc_answer(result.answer, neighborhoods, relevant)

    def test_pi_is_one_when_uncapped(self):
        db, dist, q = _setup(seed=3)
        result = disc_greedy(db, dist, q, 5.0)
        assert result.pi == pytest.approx(1.0)

    def test_stop_at_k_truncates(self):
        db, dist, q = _setup(seed=4)
        full = disc_greedy(db, dist, q, 4.0)
        capped = disc_greedy(db, dist, q, 4.0, stop_at_k=2)
        assert len(capped.answer) == min(2, len(full.answer))
        assert capped.answer == full.answer[: len(capped.answer)]


class TestGrowthBehaviour:
    def test_answer_grows_with_relevant_set(self):
        """Fig. 2(a): DisC answer size grows with the number of relevant
        objects (no budget control)."""
        db, dist, _ = _setup(seed=5, size=80)
        sizes = []
        for quantile in (0.8, 0.5, 0.2):
            q = quartile_relevance(db, quantile=quantile)
            result = disc_greedy(db, dist, q, 4.0)
            sizes.append(len(result.answer))
        assert sizes[0] <= sizes[1] <= sizes[2]
        assert sizes[2] > sizes[0]

    def test_smaller_theta_larger_answer(self):
        db, dist, q = _setup(seed=6)
        small = disc_greedy(db, dist, q, 3.0)
        large = disc_greedy(db, dist, q, 9.0)
        assert len(small.answer) >= len(large.answer)


class TestComparisonWithRep:
    def test_rep_compression_ratio_at_least_disc(self):
        """Table 4's headline: budgeted REP attains higher CR than DisC."""
        db, dist, q = _setup(seed=7, size=80)
        theta = 4.0
        disc = disc_greedy(db, dist, q, theta)
        k = max(1, len(disc.answer) // 3)
        rep = baseline_greedy(db, dist, q, theta, k)
        assert rep.compression_ratio >= disc.compression_ratio - 1e-9


class TestValidatorRejectsBadAnswers:
    def test_rejects_non_covering(self):
        neighborhoods = {0: frozenset({0}), 1: frozenset({1})}
        assert not is_valid_disc_answer([0], neighborhoods, [0, 1])

    def test_rejects_dependent_pair(self):
        neighborhoods = {
            0: frozenset({0, 1}),
            1: frozenset({0, 1}),
        }
        assert not is_valid_disc_answer([0, 1], neighborhoods, [0, 1])

"""FPR theory (Eqs. 8–12) and empirical measurement."""

import numpy as np
import pytest

from repro.ged import StarDistance
from repro.index import (
    VantageEmbedding,
    choose_num_vps,
    distance_moments,
    empirical_fpr,
    fpr_uniform,
    fpr_upper_bound_gaussian,
    select_vantage_points,
)
from tests.conftest import random_database


class TestGaussianBound:
    def test_in_unit_interval(self):
        for theta in (1.0, 5.0, 20.0):
            for vps in (1, 10, 100):
                value = fpr_upper_bound_gaussian(theta, mu=10.0, sigma=3.0, num_vps=vps)
                assert 0.0 <= value <= 1.0

    def test_monotone_decreasing_in_vps(self):
        values = [
            fpr_upper_bound_gaussian(5.0, mu=10.0, sigma=3.0, num_vps=v)
            for v in (1, 5, 25, 100)
        ]
        assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))

    def test_large_theta_gives_tiny_miss_probability(self):
        # θ far above μ: almost every pair is a true neighbor, so false
        # positives are rare regardless of VPs.
        assert fpr_upper_bound_gaussian(100.0, mu=10.0, sigma=3.0, num_vps=1) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            fpr_upper_bound_gaussian(5.0, mu=10.0, sigma=0.0, num_vps=1)
        with pytest.raises(ValueError):
            fpr_upper_bound_gaussian(5.0, mu=10.0, sigma=1.0, num_vps=0)


class TestUniformModel:
    def test_formula(self):
        # m = diameter/theta = 4: FPR = (3/4) * 4^-V
        assert fpr_uniform(1.0, 4.0, 1) == pytest.approx(0.75 / 4)
        assert fpr_uniform(1.0, 4.0, 2) == pytest.approx(0.75 / 16)

    def test_theta_above_diameter_no_false_positives(self):
        assert fpr_uniform(5.0, 4.0, 3) == 0.0

    def test_matches_simulation(self):
        # Simulate the uniform model directly: independent coordinates for
        # pairs.  The exact per-VP pass probability for U(0, mθ) vantage
        # coordinates is 2/m − 1/m²; Eq. 12 approximates it by 1/m, so the
        # simulation is compared to the exact expression and Eq. 12 is
        # checked to sit within the same order of magnitude below it.
        rng = np.random.default_rng(0)
        theta, m, vps = 1.0, 5.0, 2
        trials = 200_000
        d_true = rng.uniform(0, m * theta, trials)
        passes = np.ones(trials, dtype=bool)
        for _ in range(vps):
            a = rng.uniform(0, m * theta, trials)
            b = rng.uniform(0, m * theta, trials)
            passes &= np.abs(a - b) <= theta
        observed = float(np.mean((d_true > theta) & passes))
        exact = (m - 1) / m * (2 / m - 1 / m**2) ** vps
        assert observed == pytest.approx(exact, rel=0.1)
        predicted = fpr_uniform(theta, m * theta, vps)
        assert predicted <= exact
        assert predicted >= exact / 8


class TestChooseNumVps:
    def test_returns_small_count_for_loose_target(self):
        assert choose_num_vps(0.9, [5.0], mu=10.0, sigma=3.0) == 1

    def test_more_vps_for_tighter_target(self):
        loose = choose_num_vps(0.5, [8.0], mu=10.0, sigma=3.0)
        tight = choose_num_vps(0.001, [8.0], mu=10.0, sigma=3.0)
        assert tight >= loose

    def test_respects_max(self):
        assert choose_num_vps(1e-12, [9.9], mu=10.0, sigma=0.5, max_vps=7) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_num_vps(0.0, [5.0], mu=10.0, sigma=3.0)
        with pytest.raises(ValueError):
            choose_num_vps(0.1, [], mu=10.0, sigma=3.0)


class TestEmpirical:
    def test_empirical_fpr_in_unit_interval_and_decreasing(self):
        db = random_database(seed=5, size=60)
        dist = StarDistance()
        few = VantageEmbedding(
            db.graphs, select_vantage_points(db.graphs, 2, rng=0), dist
        )
        many = VantageEmbedding(
            db.graphs, select_vantage_points(db.graphs, 12, rng=0), dist
        )
        theta = 4.0
        fpr_few = empirical_fpr(few, dist, db.graphs, theta, num_pairs=600, rng=1)
        fpr_many = empirical_fpr(many, dist, db.graphs, theta, num_pairs=600, rng=1)
        assert 0.0 <= fpr_many <= fpr_few <= 1.0

    def test_distance_moments_reasonable(self):
        db = random_database(seed=5, size=40)
        mu, sigma = distance_moments(db.graphs, StarDistance(), num_pairs=400, rng=2)
        assert mu > 0
        assert sigma > 0

"""Tests for the batch distance engine (repro.engine).

The engine's contract is *bit-identical* results: every batched, pooled or
prefiltered path must produce exactly the values and decisions of the
serial per-pair code, so equality assertions here are ``==`` /
``array_equal``, never ``approx``.
"""

import os

import numpy as np
import pytest

from tests.conftest import random_database
from repro.core.greedy import baseline_greedy, lazy_greedy
from repro.engine import DistanceEngine, batch_evaluator_for, resolve_workers
from repro.ged.metric import (
    CachingDistance,
    CountingDistance,
    pairwise_matrix,
)
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.graphs.graph import LabeledGraph
from repro.index.nbindex import NBIndex
from repro.index.pivec import choose_thresholds
from repro.index.vantage import VantageEmbedding, select_vantage_points

_EPS = 1e-9


@pytest.fixture
def db():
    return random_database(seed=13, size=50)


@pytest.fixture
def star():
    return StarDistance()


# ---------------------------------------------------------------------------
# Batch evaluator and engine values
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("normalized", [False, True])
def test_batch_evaluator_bit_identical(db, normalized):
    serial = StarDistance(normalized=normalized)
    evaluator = batch_evaluator_for(StarDistance(normalized=normalized))
    for source in (0, 7, 23):
        expected = np.array(
            [serial(db[source], g) for g in db.graphs]
        )
        got = evaluator.one_to_many(db[source], list(db.graphs))
        assert np.array_equal(got, expected)


def test_batch_evaluator_concurrent_queries_bit_identical(db):
    """Concurrent one_to_many calls on ONE evaluator must stay correct.

    The service runs ``--concurrency`` threads against a shared engine;
    the token registry grows lazily, so unsynchronized interning used to
    (a) crash the overlap matmul with mismatched column counts and
    (b) risk two tokens silently sharing a column.  Hammer a fresh
    evaluator from several threads over disjoint graph slices and check
    every value against the serial distance.
    """
    import threading

    serial = StarDistance()
    expected = {
        source: np.array([serial(db[source], g) for g in db.graphs])
        for source in range(8)
    }
    for _ in range(5):  # fresh registry each round: interning races live
        evaluator = batch_evaluator_for(StarDistance())
        results = {}
        barrier = threading.Barrier(4)

        def hammer(sources):
            barrier.wait()  # maximize registry-growth overlap
            for source in sources:
                results[source] = evaluator.one_to_many(
                    db[source], list(db.graphs)
                )

        threads = [
            threading.Thread(target=hammer, args=([s, s + 4],))
            for s in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for source, got in results.items():
            assert np.array_equal(got, expected[source]), source


def test_batch_evaluator_empty_and_mismatched_graphs(star):
    empty = LabeledGraph([], [])
    single = LabeledGraph(["a"], [])
    big = LabeledGraph(["a", "b", "c", "a"], [(0, 1), (1, 2), (2, 3), (3, 0)])
    evaluator = batch_evaluator_for(StarDistance())
    graphs = [empty, single, big]
    for g in graphs:
        expected = np.array([star(g, h) for h in graphs])
        assert np.array_equal(evaluator.one_to_many(g, graphs), expected)


def test_engine_matrix_matches_pairwise_matrix(db, star):
    expected = pairwise_matrix(db.graphs, star)
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        assert np.array_equal(engine.matrix(), expected)
    with DistanceEngine(
        StarDistance(), workers=4, graphs=db.graphs, parallel_threshold=8,
        respect_cpu_count=False,
    ) as engine:
        assert np.array_equal(engine.matrix(), expected)
        assert engine.stats()["parallel_batches"] > 0


def test_engine_matrix_via_pairwise_matrix_param(db, star):
    with DistanceEngine(StarDistance(), workers=1) as engine:
        got = pairwise_matrix(db.graphs, star, engine=engine)
    assert np.array_equal(got, pairwise_matrix(db.graphs, star))


def test_one_to_many_accepts_indices_objects_and_duplicates(db, star):
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        refs = [1, db[2], 1, 3, np.int64(4)]
        expected = np.array([star(db[0], db[i]) for i in (1, 2, 1, 3, 4)])
        assert np.array_equal(engine.one_to_many(0, refs), expected)
        # The duplicate index is served from the batch, not re-evaluated.
        assert engine.evaluations == 4
        assert engine.cache_hits == 1


def test_pairs_matches_serial(db, star):
    pairlist = [(0, 1), (5, 9), (9, 5), (2, 2), (0, 1)]
    expected = np.array([star(db[i], db[j]) for i, j in pairlist])
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        assert np.array_equal(engine.pairs(pairlist), expected)
        # (9,5) mirrors (5,9) and the repeated (0,1) hits the batch dedupe.
        assert engine.evaluations == 3


def test_normalized_engine_matches(db):
    serial = StarDistance(normalized=True)
    expected = pairwise_matrix(db.graphs, serial)
    with DistanceEngine(
        StarDistance(normalized=True), workers=1, graphs=db.graphs
    ) as engine:
        assert np.array_equal(engine.matrix(), expected)


def test_engine_single_call_and_cache(db, star):
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        value = engine(db[3], db[8])
        assert value == star(db[3], db[8])
        assert engine(3, 8) == value  # index refs resolve to the same pair
        assert engine.evaluations == 1
        assert engine.cache_hits == 1


def test_engine_non_star_distance_fallback(db):
    # A metric with no vectorized evaluator still works through the engine.
    def manhattan_size(g1, g2):
        return abs(g1.num_nodes - g2.num_nodes) + abs(g1.num_edges - g2.num_edges)

    expected = pairwise_matrix(db.graphs, manhattan_size)
    with DistanceEngine(manhattan_size, workers=1, graphs=db.graphs) as engine:
        assert engine._evaluator is None
        assert np.array_equal(engine.matrix(), expected)


# ---------------------------------------------------------------------------
# Serial fallback, worker resolution and pooling
# ---------------------------------------------------------------------------
def test_serial_engine_never_creates_a_pool(db):
    engine = DistanceEngine(StarDistance(), workers=1, graphs=db.graphs)
    engine.matrix()
    engine.one_to_many(0, list(range(len(db))))
    engine.pairs([(0, 1), (2, 3)])
    assert engine._pool is None
    assert engine.stats()["parallel_batches"] == 0


def test_parallel_engine_small_batches_stay_in_process(db):
    engine = DistanceEngine(
        StarDistance(), workers=4, graphs=db.graphs, parallel_threshold=1000
    )
    engine.one_to_many(0, list(range(len(db))))
    assert engine._pool is None
    engine.close()


def test_pool_sized_to_cpu_count(db):
    import os as _os

    cores = _os.cpu_count() or 1
    capped = DistanceEngine(StarDistance(), workers=cores + 3, graphs=db.graphs)
    assert capped.pool_workers == cores
    capped.close()
    forced = DistanceEngine(
        StarDistance(), workers=cores + 3, graphs=db.graphs,
        respect_cpu_count=False,
    )
    assert forced.pool_workers == cores + 3
    forced.close()


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    monkeypatch.setenv("REPRO_ENGINE_WORKERS", "5")
    assert resolve_workers(None) == 5
    assert resolve_workers(2) == 2
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_no_eager_multiprocessing_import():
    # Engine modules must not import multiprocessing at import time.
    import subprocess
    import sys

    code = (
        "import sys\n"
        "import repro, repro.engine, repro.index.nbindex\n"
        "assert 'multiprocessing.pool' not in sys.modules, 'eager pool import'\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-c", code], env=env, cwd=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ), capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


# ---------------------------------------------------------------------------
# Lipschitz prefilter
# ---------------------------------------------------------------------------
def test_within_matches_bruteforce(db, star):
    matrix = pairwise_matrix(db.graphs, star)
    rng = np.random.default_rng(1)
    vps = select_vantage_points(db.graphs, 5, rng, strategy="random")
    embedding = VantageEmbedding(db.graphs, vps, star)
    engine = DistanceEngine(StarDistance(), workers=1, graphs=db.graphs)
    engine.attach_embedding(embedding)
    everyone = list(range(len(db)))
    for theta in (1.0, 3.0, 5.0, 8.0):
        # A vantage point as source gives exact upper bounds, exercising
        # the accept branch; the others exercise the reject branch.
        for source in (vps[0], 0, 11, 31):
            expected = matrix[source] <= theta + _EPS
            assert np.array_equal(
                engine.within(source, everyone, theta), expected
            )
    stats = engine.stats()
    assert stats["prefilter_lower_rejections"] > 0
    assert stats["prefilter_upper_accepts"] > 0
    # Prefiltered decisions must have saved real evaluations.
    assert stats["evaluations"] < len(db) * len(db)


def test_within_without_embedding_or_indices(db, star):
    engine = DistanceEngine(StarDistance(), workers=1, graphs=db.graphs)
    expected = np.array(
        [star(db[4], g) <= 3.0 + _EPS for g in db.graphs]
    )
    assert np.array_equal(
        engine.within(db[4], list(db.graphs), 3.0), expected
    )


# ---------------------------------------------------------------------------
# Wrapper stats composability
# ---------------------------------------------------------------------------
def test_stats_composable_in_either_order(db, star):
    pairs = [(0, 1), (1, 2), (0, 1), (2, 0), (1, 2), (3, 4)]

    counting_outer = CountingDistance(CachingDistance(StarDistance()))
    caching_outer = CachingDistance(CountingDistance(StarDistance()))
    for i, j in pairs:
        assert counting_outer(db[i], db[j]) == caching_outer(db[i], db[j])

    a, b = counting_outer.stats(), caching_outer.stats()
    for key in ("calls", "evaluations", "cache_hits", "hit_rate"):
        assert a[key] == b[key], key
    assert a["calls"] == len(pairs)
    assert a["evaluations"] == 4  # distinct pairs
    assert a["cache_hits"] == 2


def test_engine_stats_shape(db):
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        engine.one_to_many(0, [1, 2, 1])
        stats = engine.stats()
    for key in ("evaluations", "cache_hits", "cache_misses", "hit_rate",
                "batches", "parallel_batches", "workers"):
        assert key in stats
    assert stats["evaluations"] == 2
    assert stats["cache_hits"] == 1
    assert engine.calls == 2  # CountingDistance-compatible


# ---------------------------------------------------------------------------
# Parallel vs serial: whole-pipeline equivalence
# ---------------------------------------------------------------------------
def _build_index(workers):
    database = random_database(seed=21, size=60)
    index = NBIndex.build(
        database, StarDistance(), num_vantage_points=6, branching=4,
        seed=5, workers=workers,
    )
    return database, index


def test_index_build_identical_across_worker_counts():
    database1, index1 = _build_index(workers=1)
    database4, index4 = _build_index(workers=4)
    try:
        assert np.array_equal(index1.embedding.coords, index4.embedding.coords)
        assert index1.embedding.vantage_indices == index4.embedding.vantage_indices
        assert index1.ladder.values == index4.ladder.values
        assert index1.tree.num_nodes == index4.tree.num_nodes
        for a, b in zip(index1.tree.nodes, index4.tree.nodes):
            assert a.centroid == b.centroid
            assert a.radius == b.radius
            assert a.diameter == b.diameter
            assert a.graph_index == b.graph_index
            assert np.array_equal(a.members, b.members)
        assert index1.tree.stats.exact_distances == index4.tree.stats.exact_distances
        assert index1.tree.stats.pruned_by_vantage == index4.tree.stats.pruned_by_vantage
        assert index1.stats()["distance_calls"] == index4.stats()["distance_calls"]

        q1 = quartile_relevance(database1)
        q4 = quartile_relevance(database4)
        session1 = index1.session(q1)
        session4 = index4.session(q4)
        # Identical pi-hat vectors at every indexed threshold.
        for ladder_index in range(len(index1.ladder)):
            assert np.array_equal(
                session1.pi_hat_column(ladder_index),
                session4.pi_hat_column(ladder_index),
            )
        for theta in (2.0, 4.0):
            r1 = session1.query(theta, 6)
            r4 = session4.query(theta, 6)
            assert r1.answer == r4.answer
            assert r1.gains == r4.gains
            assert r1.covered == r4.covered
    finally:
        index1.engine.close()
        index4.engine.close()


def test_greedy_engine_matches_plain(db, star):
    q = quartile_relevance(db)
    plain = baseline_greedy(db, star, q, theta=4.0, k=6)
    with DistanceEngine(
        StarDistance(), workers=4, graphs=db.graphs, parallel_threshold=8,
        respect_cpu_count=False,
    ) as engine:
        fast = baseline_greedy(db, star, q, theta=4.0, k=6, engine=engine)
        lazy = lazy_greedy(db, star, q, theta=4.0, k=6, engine=engine)
    assert fast.answer == plain.answer
    assert fast.gains == plain.gains
    assert fast.covered == plain.covered
    assert lazy.answer == plain.answer
    assert lazy.covered == plain.covered


def test_maxmin_vantage_selection_matches(db, star):
    serial = select_vantage_points(
        db.graphs, 5, np.random.default_rng(3), strategy="maxmin",
        distance=star,
    )
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        batched = select_vantage_points(
            db.graphs, 5, np.random.default_rng(3), strategy="maxmin",
            engine=engine,
        )
    assert serial == batched


def test_choose_thresholds_matches(db, star):
    serial = choose_thresholds(
        db.graphs, star, count=6, num_pairs=80, rng=np.random.default_rng(4)
    )
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        batched = choose_thresholds(
            db.graphs, engine, count=6, num_pairs=80,
            rng=np.random.default_rng(4), engine=engine,
        )
    assert serial.values == batched.values


def test_sample_distances_matches(db, star):
    from repro.analysis.distances import sample_distances

    serial = sample_distances(db, star, num_pairs=60, rng=np.random.default_rng(8))
    with DistanceEngine(StarDistance(), workers=1, graphs=db.graphs) as engine:
        batched = sample_distances(
            db, star, num_pairs=60, rng=np.random.default_rng(8), engine=engine
        )
    assert np.array_equal(serial.samples, batched.samples)


def test_mtree_ctree_engine_equivalence(db, star):
    from repro.baselines.ctree import CTree
    from repro.baselines.mtree import MTree

    with DistanceEngine(
        StarDistance(), workers=4, graphs=db.graphs, parallel_threshold=8,
        respect_cpu_count=False,
    ) as engine:
        m_serial = MTree(db.graphs, star, capacity=5, seed=np.random.default_rng(2))
        m_batch = MTree(
            db.graphs, star, capacity=5, seed=np.random.default_rng(2),
            engine=engine,
        )
        c_serial = CTree(db.graphs, star, capacity=5, seed=np.random.default_rng(2))
        c_batch = CTree(
            db.graphs, star, capacity=5, seed=np.random.default_rng(2),
            engine=engine,
        )
    assert m_serial.distance_calls == m_batch.distance_calls
    assert c_serial.distance_calls == c_batch.distance_calls
    for gid in (0, 17, 42):
        for theta in (2.0, 5.0):
            assert m_serial.range_query(gid, theta) == m_batch.range_query(gid, theta)
            assert c_serial.range_query(gid, theta) == c_batch.range_query(gid, theta)


def test_insert_invalidates_pool_and_stays_correct():
    database = random_database(seed=30, size=40)
    index = NBIndex.build(
        database, StarDistance(), num_vantage_points=4, branching=4,
        seed=2, workers=2,
    )
    try:
        donor = random_database(seed=31, size=1)
        new_id = index.insert(donor[0], np.zeros(database.num_features))
        assert index.engine._pool is None  # dropped on insert
        star = StarDistance()
        session = index.session(lambda row: True)
        result = session.query(theta=3.0, k=5)
        # The exact neighborhood of the inserted graph must match brute force.
        expected = frozenset(
            i for i in range(len(database))
            if star(database[new_id], database[i]) <= 3.0 + _EPS
        )
        got = session._exact_neighborhood(
            new_id, 3.0, {}, result.stats.__class__()
        )
        # _exact_neighborhood returns a packed bitset over the session's
        # relevant universe; decode for the brute-force comparison.
        assert session.universe.decode_frozenset(got) == expected
    finally:
        index.engine.close()


# ---------------------------------------------------------------------------
# Thread safety of the shared pair cache (the query service runs several
# worker threads over one engine)
# ---------------------------------------------------------------------------
class TestEngineThreadSafety:
    def _reference(self, db, star, pairs):
        return {pair: star(db[pair[0]], db[pair[1]]) for pair in pairs}

    def test_concurrent_calls_bit_identical_and_counters_consistent(
        self, db, star
    ):
        import itertools
        import threading

        pairs = list(itertools.combinations(range(20), 2))
        expected = self._reference(db, star, pairs)
        engine = DistanceEngine(star, graphs=db.graphs)
        errors = []
        barrier = threading.Barrier(4, timeout=10.0)

        def hammer(offset):
            barrier.wait()  # maximize overlap on the shared cache
            try:
                # Rotate so threads collide on the same keys in different
                # orders, mixing the single-pair and batch paths.
                mine = pairs[offset:] + pairs[:offset]
                for i, j in mine:
                    assert engine(i, j) == expected[(i, j)]
                row = engine.one_to_many(0, [j for _, j in mine[:15]])
                for value, (_, j) in zip(row, mine[:15]):
                    assert value == expected[tuple(sorted((0, j)))] if 0 != j else True
                got = engine.pairs(mine[:25])
                for value, pair in zip(got, mine[:25]):
                    assert value == expected[pair]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(k * 37,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors, errors
        assert not any(t.is_alive() for t in threads)

        # Every cached value is exactly the serial metric's value.
        for (i, j), value in expected.items():
            assert engine(i, j) == value
        # Counter consistency: total lookups add up, and evaluations can
        # only exceed the distinct-pair count by benign duplicate misses
        # (two threads racing the same key), never undercount it.
        stats = engine.stats()
        assert stats["cache_size"] == len(expected)
        assert stats["evaluations"] >= len(expected)
        assert stats["cache_hits"] + stats["evaluations"] > 0

    def test_concurrent_within_prefilter(self, db, star):
        import threading

        engine = DistanceEngine(star, graphs=db.graphs)
        vps = select_vantage_points(
            db.graphs, 4, np.random.default_rng(5), strategy="random"
        )
        embedding = VantageEmbedding(db.graphs, vps, star)
        engine.attach_embedding(embedding)
        candidates = list(range(len(db)))
        expected = engine.within(0, candidates, 5.0)
        fresh = DistanceEngine(star, graphs=db.graphs)
        fresh.attach_embedding(embedding)
        results = [None] * 4
        errors = []

        def worker(slot):
            try:
                results[slot] = fresh.within(0, candidates, 5.0)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors, errors
        for result in results:
            np.testing.assert_array_equal(result, expected)

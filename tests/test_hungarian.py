"""The from-scratch Hungarian solver, cross-validated against SciPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.ged import assignment_cost, hungarian


class TestBasics:
    def test_empty(self):
        assignment, total = hungarian(np.zeros((0, 0)))
        assert assignment == []
        assert total == 0.0

    def test_single(self):
        assignment, total = hungarian([[3.5]])
        assert assignment == [0]
        assert total == 3.5

    def test_identity_optimal(self):
        cost = [[0, 9], [9, 0]]
        assignment, total = hungarian(cost)
        assert assignment == [0, 1]
        assert total == 0.0

    def test_permutation_needed(self):
        cost = [[9, 0], [0, 9]]
        assignment, total = hungarian(cost)
        assert assignment == [1, 0]
        assert total == 0.0

    def test_known_3x3(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        _, total = hungarian(cost)
        assert total == 5.0  # 1 + 2 + 2

    def test_assignment_is_permutation(self):
        rng = np.random.default_rng(0)
        cost = rng.random((6, 6))
        assignment, _ = hungarian(cost)
        assert sorted(assignment) == list(range(6))


class TestValidation:
    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            hungarian(np.zeros((2, 3)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            hungarian(np.zeros(4))

    def test_rejects_infinite(self):
        with pytest.raises(ValueError, match="finite"):
            hungarian([[np.inf]])


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 12))
        cost = rng.random((n, n)) * 10
        _, ours = hungarian(cost)
        rows, cols = linear_sum_assignment(cost)
        assert ours == pytest.approx(float(cost[rows, cols].sum()))

    def test_integer_costs(self):
        rng = np.random.default_rng(42)
        cost = rng.integers(0, 50, size=(8, 8)).astype(float)
        rows, cols = linear_sum_assignment(cost)
        assert assignment_cost(cost) == pytest.approx(float(cost[rows, cols].sum()))

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_matches_scipy(self, n, seed):
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, 20, size=(n, n)).astype(float)
        _, ours = hungarian(cost)
        rows, cols = linear_sum_assignment(cost)
        assert ours == pytest.approx(float(cost[rows, cols].sum()))

"""NB-Index persistence (save/load) and incremental insertion."""

import numpy as np
import pytest

from repro.core import baseline_greedy
from repro.ged import StarDistance
from repro.graphs import GraphDatabase, path_graph, quartile_relevance
from repro.index import NBIndex, load_index, save_index
from tests.conftest import random_connected_graph, random_database
from tests.test_nbindex import assert_valid_greedy_trajectory


def _build(seed=0, size=50):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    index = NBIndex.build(db, dist, num_vantage_points=5, branching=4, seed=seed)
    return db, dist, q, index


class TestPersistence:
    def test_roundtrip_structure(self, tmp_path):
        db, dist, q, index = _build(seed=1)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path, db, dist)
        assert loaded.tree.num_nodes == index.tree.num_nodes
        assert loaded.tree.branching == index.tree.branching
        assert np.allclose(loaded.embedding.coords, index.embedding.coords)
        assert list(loaded.ladder) == list(index.ladder)
        for a, b in zip(index.tree.nodes, loaded.tree.nodes):
            assert a.centroid == b.centroid
            assert a.radius == pytest.approx(b.radius)
            assert a.diameter == pytest.approx(b.diameter)
            assert np.array_equal(a.members, b.members)
            assert a.graph_index == b.graph_index

    def test_loaded_index_answers_queries(self, tmp_path):
        db, dist, q, index = _build(seed=2)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path, db, dist)
        theta = 5.0
        original = index.query(q, theta, 4)
        reloaded = loaded.query(q, theta, 4)
        assert reloaded.answer == original.answer
        assert reloaded.gains == original.gains

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        db, dist, q, index = _build(seed=3, size=30)
        path = tmp_path / "index.npz"
        save_index(index, path)
        other = random_database(seed=99, size=30)
        with pytest.raises(ValueError, match="fingerprint"):
            load_index(path, other, dist)

    def test_wrong_size_database_rejected(self, tmp_path):
        db, dist, q, index = _build(seed=4, size=30)
        path = tmp_path / "index.npz"
        save_index(index, path)
        smaller = db.subset(range(10))
        with pytest.raises(ValueError, match="fingerprint"):
            load_index(path, smaller, dist)


class TestInsert:
    def test_insert_updates_database_and_tree(self):
        db, dist, q, index = _build(seed=5, size=30)
        rng = np.random.default_rng(0)
        new_graph = random_connected_graph(rng, 5)
        new_id = index.insert(new_graph, np.zeros(db.num_features))
        assert new_id == 30
        assert len(db) == 31
        assert index.tree.root.members.size == 31
        leaves = sorted(n.graph_index for n in index.tree.nodes if n.is_leaf)
        assert leaves == list(range(31))

    def test_geometry_stays_valid_after_inserts(self):
        db, dist, q, index = _build(seed=6, size=25)
        rng = np.random.default_rng(1)
        for _ in range(8):
            index.insert(
                random_connected_graph(rng, int(rng.integers(3, 8))),
                rng.random(db.num_features),
            )
        # Radii must still cover members (the invariant Theorems 6-8 use).
        for node in index.tree.nodes:
            if node.is_leaf:
                continue
            centroid = db[node.centroid]
            for m in node.members:
                assert dist(centroid, db[int(m)]) <= node.radius + 1e-9

    def test_queries_remain_valid_greedy_after_inserts(self):
        db, dist, _, index = _build(seed=7, size=30)
        rng = np.random.default_rng(2)
        for _ in range(6):
            index.insert(
                random_connected_graph(rng, int(rng.integers(3, 8))),
                rng.random(db.num_features),
            )
        q = quartile_relevance(db, quantile=0.3)
        theta = 5.0
        result = index.query(q, theta, 4)
        assert_valid_greedy_trajectory(db, dist, q, theta, result)
        expected = baseline_greedy(db, dist, q, theta, 4)
        assert result.gains[0] == expected.gains[0]

    def test_inserted_graph_is_findable(self):
        """A new graph that duplicates an existing cluster member must be
        retrievable as part of neighborhoods."""
        db, dist, _, index = _build(seed=8, size=20)
        clone = GraphDatabase._copy_graph(db[0])
        high = np.full(db.num_features, 10.0)  # certainly relevant
        new_id = index.insert(clone, high)
        q = quartile_relevance(db, quantile=0.5)
        result = index.query(q, 1e-6, k=len(db))
        assert new_id in result.covered

    def test_single_graph_root_grows(self):
        graphs = [path_graph(["C", "C"])]
        db = GraphDatabase(graphs, np.zeros((1, 1)))
        dist = StarDistance()
        index = NBIndex.build(db, dist, num_vantage_points=1, branching=2, seed=0)
        assert index.tree.root.is_leaf
        index.insert(path_graph(["C", "N"]), [1.0])
        assert not index.tree.root.is_leaf
        assert index.tree.root.members.size == 2

    def test_feature_dim_mismatch_rejected(self):
        db, dist, _, index = _build(seed=9, size=15)
        with pytest.raises(ValueError, match="dims"):
            index.insert(path_graph(["C"]), [1.0, 2.0, 3.0, 4.0, 5.0])

    def test_save_load_after_inserts(self, tmp_path):
        """Persistence must capture the post-insert tree exactly."""
        db, dist, q, index = _build(seed=10, size=25)
        rng = np.random.default_rng(3)
        for _ in range(5):
            index.insert(
                random_connected_graph(rng, int(rng.integers(3, 7))),
                rng.random(db.num_features),
            )
        path = tmp_path / "inserted.npz"
        save_index(index, path)
        loaded = load_index(path, db, dist)
        assert loaded.tree.num_nodes == index.tree.num_nodes
        for a, b in zip(index.tree.nodes, loaded.tree.nodes):
            assert np.array_equal(np.sort(a.members), b.members)
            assert a.radius == pytest.approx(b.radius)
        original = index.query(q, 5.0, 3)
        reloaded = loaded.query(q, 5.0, 3)
        assert reloaded.answer == original.answer

"""Smoke tests for the experiment drivers at tiny scale.

The benchmarks exercise these at full scale; these tests keep ``pytest
tests/`` able to catch driver regressions (signature drift, column
renames, broken engines) in seconds.
"""

import pytest

from repro.bench import BenchContext
from repro.bench.distances import ablation_distance_quality
from repro.bench.experiments import (
    fig2a_disc_growth,
    fig5ab_distance_cdf,
    fig5ce_distance_hist,
    fig5fh_fpr,
    fig7_qualitative,
    table4_quality,
)
from repro.bench.scaling import (
    ablation_bounds,
    ablation_insert_degradation,
    fig5l6a_threshold_gap,
    fig6h_time_vs_dims,
    fig6i_zoom,
)


@pytest.fixture(scope="module")
def tiny_ctx():
    return BenchContext.create("dud", num_graphs=70, seed=3,
                               num_vantage_points=5, branching=4)


class TestQualityDrivers:
    def test_fig2a(self, tiny_ctx):
        result = fig2a_disc_growth(tiny_ctx, relevant_quantiles=(0.8, 0.4))
        assert result.columns[0] == "relevant"
        assert len(result.rows) == 2
        assert result.rows[0]["relevant"] <= result.rows[1]["relevant"]

    def test_table4(self, tiny_ctx):
        result = table4_quality([tiny_ctx], ks=(3, 5))
        assert len(result.rows) == 3  # two ks + DisC row
        assert result.rows[0]["REP_pi"] >= result.rows[0]["DIV(t)_pi"] - 1e-9

    def test_fig7(self):
        result = fig7_qualitative(num_graphs=70, seed=3, k=3)
        engines = {row["engine"] for row in result.rows}
        assert engines == {"traditional_topk", "representative"}


class TestDistributionDrivers:
    def test_fig5ab(self, tiny_ctx):
        result = fig5ab_distance_cdf([tiny_ctx], num_points=5, num_pairs=200)
        assert len(result.rows) == 5
        cdf = [row["cdf"] for row in result.rows]
        assert cdf == sorted(cdf)

    def test_fig5ce(self, tiny_ctx):
        result = fig5ce_distance_hist([tiny_ctx], bins=5, num_pairs=200)
        assert all(row["sigma"] > 0 for row in result.rows)

    def test_fig5fh(self, tiny_ctx):
        result = fig5fh_fpr(tiny_ctx, theta_factors=(1.0,), num_pairs=200)
        assert 0.0 <= result.rows[0]["observed_fpr"] <= 1.0


class TestScalingDrivers:
    def test_fig5l6a(self, tiny_ctx):
        result = fig5l6a_threshold_gap(tiny_ctx, gap_factors=(0.0, 1.0), k=3)
        assert len(result.rows) == 2
        assert all(row["query_s"] > 0 for row in result.rows)

    def test_fig6h(self, tiny_ctx):
        result = fig6h_time_vs_dims(tiny_ctx, dims_list=(1, 10), k=3)
        assert len(result.rows) == 2

    def test_fig6i(self, tiny_ctx):
        result = fig6i_zoom([tiny_ctx], k=3, rounds=2)
        assert result.rows[0]["nb_refine_avg_s"] > 0

    def test_ablation_bounds(self, tiny_ctx):
        result = ablation_bounds(tiny_ctx, k=3)
        variants = [row["variant"] for row in result.rows]
        assert variants == ["full", "no_updates", "vo_only"]
        pis = [row["pi"] for row in result.rows]
        assert max(pis) - min(pis) < 1e-9

    def test_ablation_insert(self):
        result = ablation_insert_degradation("dud", base_size=50,
                                             num_inserts=10, k=3, seed=3)
        names = [row["index"] for row in result.rows]
        assert names == ["incremental", "rebuilt"]


class TestDistanceDriver:
    def test_ablation_distance_quality_tiny(self):
        result = ablation_distance_quality(num_graphs=8, num_pairs=10, seed=3)
        by_name = {row["distance"]: row for row in result.rows}
        assert by_name["exact_astar"]["spearman_vs_exact"] == pytest.approx(1.0)
        assert by_name["star_metric"]["metric_on_sample"]


class TestSweepDrivers:
    """Tiny-size smoke coverage of the size/k sweep drivers."""

    def test_fig2b(self):
        from repro.bench.scaling import fig2b_baseline_scaling

        result = fig2b_baseline_scaling("dud", sizes=(20, 35), k=2, seed=3)
        assert [row["size"] for row in result.rows] == [20, 35]
        assert all(row["plain_greedy_s"] > 0 for row in result.rows)

    def test_fig5ik(self, tiny_ctx):
        from repro.bench.scaling import fig5ik_time_vs_theta

        result = fig5ik_time_vs_theta(
            tiny_ctx, theta_factors=(1.0,), k=2, include_matrix=True
        )
        row = result.rows[0]
        for column in ("nbindex_s", "ctree_greedy_s", "disc_s", "div_s",
                       "distmatrix_s"):
            assert row[column] >= 0

    def test_fig6bd(self):
        from repro.bench.scaling import fig6bd_time_vs_size

        result = fig6bd_time_vs_size("dud", sizes=(20, 35), k=2, seed=3)
        assert len(result.rows) == 2

    def test_fig6eg(self, tiny_ctx):
        from repro.bench.scaling import fig6eg_time_vs_k

        result = fig6eg_time_vs_k(tiny_ctx, ks=(2, 4))
        assert [row["k"] for row in result.rows] == [2, 4]

    def test_fig6j(self):
        from repro.bench.scaling import fig6j_zoom_scaling

        result = fig6j_zoom_scaling("dud", sizes=(25,), k=2, rounds=2, seed=3)
        assert result.rows[0]["nb_refine_avg_s"] > 0

    def test_fig6k_and_6l(self):
        from repro.bench.scaling import fig6k_index_build, fig6l_index_memory

        build = fig6k_index_build("dud", sizes=(25,), seed=3)
        assert build.rows[0]["nb_distance_calls"] > 0
        memory = fig6l_index_memory("dud", sizes=(25,), seed=3)
        assert memory.rows[0]["nb_index_bytes"] > 0

    def test_ablation_vp_and_branching_and_ladder(self, tiny_ctx):
        from repro.bench.scaling import (
            ablation_branching,
            ablation_ladder_density,
            ablation_vp_count,
        )

        assert len(ablation_vp_count(tiny_ctx, (2, 4), k=2, num_pairs=60).rows) == 2
        assert len(ablation_branching(tiny_ctx, (3, 6), k=2).rows) == 2
        assert len(ablation_ladder_density(tiny_ctx, (1, 4), k=2).rows) == 2

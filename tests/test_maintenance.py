"""Database soft-deletion and index ladder swapping."""

import pytest

from repro.baselines import disc_greedy
from repro.core import baseline_greedy
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex, ThresholdLadder
from tests.conftest import random_database
from tests.test_nbindex import assert_valid_greedy_trajectory


def _setup(seed=0, size=40):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    return db, dist, q


class TestSoftDeletion:
    def test_deleted_not_relevant(self):
        db, dist, q = _setup(seed=1)
        before = set(int(i) for i in db.relevant_indices(q))
        victim = next(iter(before))
        db.mark_deleted(victim)
        after = set(int(i) for i in db.relevant_indices(q))
        assert victim not in after
        assert after == before - {victim}

    def test_restore(self):
        db, dist, q = _setup(seed=2)
        victim = int(db.relevant_indices(q)[0])
        db.mark_deleted(victim)
        db.restore(victim)
        assert victim in set(int(i) for i in db.relevant_indices(q))
        assert not db.is_deleted(victim)

    def test_deleted_never_in_answers_or_coverage(self):
        db, dist, q = _setup(seed=3)
        relevant = [int(i) for i in db.relevant_indices(q)]
        for victim in relevant[:3]:
            db.mark_deleted(victim)
        result = baseline_greedy(db, dist, q, 5.0, 5)
        assert not (set(result.answer) & set(relevant[:3]))
        assert not (result.covered & set(relevant[:3]))

    def test_disc_respects_deletions(self):
        db, dist, q = _setup(seed=4)
        victim = int(db.relevant_indices(q)[0])
        db.mark_deleted(victim)
        result = disc_greedy(db, dist, q, 5.0)
        assert victim not in result.covered
        assert result.pi == pytest.approx(1.0)  # covers the *remaining* set

    def test_nbindex_respects_deletions(self):
        db, dist, q = _setup(seed=5)
        index = NBIndex.build(db, dist, num_vantage_points=4, branching=3, seed=0)
        relevant = [int(i) for i in db.relevant_indices(q)]
        db.mark_deleted(relevant[0])
        result = index.query(q, 5.0, 4)
        assert relevant[0] not in result.answer
        assert relevant[0] not in result.covered
        assert_valid_greedy_trajectory(db, dist, q, 5.0, result)

    def test_out_of_range_rejected(self):
        db, _, _ = _setup(seed=6, size=10)
        with pytest.raises(ValueError):
            db.mark_deleted(10)

    def test_deleted_property(self):
        db, _, _ = _setup(seed=7, size=10)
        db.mark_deleted(3)
        db.mark_deleted(5)
        assert db.deleted == frozenset({3, 5})


class TestSetLadder:
    def test_swapped_ladder_used_by_new_sessions(self):
        db, dist, q = _setup(seed=8)
        index = NBIndex.build(db, dist, num_vantage_points=4, branching=3, seed=0)
        index.set_ladder(ThresholdLadder([2.5, 7.5]))
        assert list(index.ladder) == [2.5, 7.5]
        result = index.query(q, 5.0, 3)
        assert_valid_greedy_trajectory(db, dist, q, 5.0, result)

    def test_sessions_valid_before_and_after_swap(self):
        # Different ladders change bound tightness (and hence tie
        # resolution), so answers may differ — both must still be valid
        # greedy trajectories with the same first (tie-free) gain.
        db, dist, q = _setup(seed=9)
        index = NBIndex.build(db, dist, num_vantage_points=4, branching=3, seed=0)
        first = index.session(q).query(5.0, 3)
        index.set_ladder(ThresholdLadder([5.0]))
        second = index.session(q).query(5.0, 3)
        assert_valid_greedy_trajectory(db, dist, q, 5.0, first)
        assert_valid_greedy_trajectory(db, dist, q, 5.0, second)
        assert first.gains[0] == second.gains[0]


class TestSubsetAndDeletionInteraction:
    def test_subset_does_not_carry_deletions(self):
        db, _, _ = _setup(seed=10, size=12)
        db.mark_deleted(2)
        sub = db.subset(range(6))
        assert sub.deleted == frozenset()

    def test_append_then_delete_roundtrip(self):
        from repro.graphs import path_graph

        db, _, q = _setup(seed=11, size=12)
        new_id = db.append(path_graph(["C", "N"]),
                           [10.0] * db.num_features)
        db.mark_deleted(new_id)
        assert new_id not in set(int(i) for i in db.relevant_indices(q))
        db.restore(new_id)
        assert new_id in set(int(i) for i in db.relevant_indices(q))

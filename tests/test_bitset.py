"""Property tests: packed-bitset kernel vs Python set semantics.

Every kernel primitive is checked against the frozenset arithmetic it
replaces, over id universes up to 10^4 including the word-boundary sizes
(63/64/65 bits) where packing bugs live.  The bitset hot paths are only
allowed to be *fast* — any semantic daylight between a kernel op and the
equivalent set expression is a bug the dual-run gates would eventually
surface; these tests pin it at the primitive level.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitset import BitsetDelta, BitsetUniverse, kernel

#: Word-boundary universe sizes plus small/large spot checks.
BOUNDARY_SIZES = (1, 63, 64, 65, 127, 128, 129)


def subset_strategy(max_size=10_000):
    """(nbits, sorted position array) pairs, biased toward boundaries."""
    size = st.one_of(
        st.sampled_from(BOUNDARY_SIZES),
        st.integers(min_value=1, max_value=max_size),
    )
    return size.flatmap(
        lambda nbits: st.tuples(
            st.just(nbits),
            st.lists(
                st.integers(min_value=0, max_value=nbits - 1),
                unique=True, max_size=min(nbits, 600),
            ).map(sorted),
        )
    )


def as_set(nbits, positions):
    return set(int(p) for p in positions)


@settings(max_examples=80, deadline=None)
@given(subset_strategy())
def test_roundtrip_and_popcount(case):
    nbits, positions = case
    words = kernel.from_positions(np.array(positions, dtype=np.int64), nbits)
    assert words.shape == (kernel.num_words(nbits),)
    assert list(kernel.to_positions(words)) == positions
    assert kernel.popcount(words) == len(positions)
    for p in range(min(nbits, 130)):
        assert kernel.test_bit(words, p) == (p in as_set(nbits, positions))


@settings(max_examples=80, deadline=None)
@given(subset_strategy())
def test_set_algebra_matches_frozensets(case):
    nbits, positions = case
    rng = np.random.default_rng(len(positions) * 7919 + nbits)
    other = np.flatnonzero(rng.random(nbits) < 0.3).astype(np.int64)
    a = kernel.from_positions(np.array(positions, dtype=np.int64), nbits)
    b = kernel.from_positions(other, nbits)
    sa, sb = as_set(nbits, positions), as_set(nbits, other)

    assert set(kernel.to_positions(kernel.intersection(a, b))) == sa & sb
    assert kernel.intersection_count(a, b) == len(sa & sb)
    assert set(kernel.to_positions(kernel.andnot(a, b))) == sa - sb
    assert kernel.uncovered_count(a, b) == len(sa - sb)
    union = a.copy()
    kernel.union_into(union, b)
    assert set(kernel.to_positions(union)) == sa | sb
    assert kernel.equals(a, a.copy())
    assert kernel.equals(a, b) == (sa == sb)


@settings(max_examples=60, deadline=None)
@given(subset_strategy(max_size=2_000), st.integers(2, 8))
def test_batch_uncovered_counts(case, rows):
    nbits, positions = case
    rng = np.random.default_rng(nbits * 31 + rows)
    matrix = kernel.zeros_matrix(rows, nbits)
    row_sets = []
    for r in range(rows):
        members = np.flatnonzero(rng.random(nbits) < 0.25).astype(np.int64)
        matrix[r] = kernel.from_positions(members, nbits)
        row_sets.append(set(int(p) for p in members))
    covered = kernel.from_positions(
        np.array(positions, dtype=np.int64), nbits
    )
    covered_set = as_set(nbits, positions)

    counts = kernel.uncovered_counts(matrix, covered)
    assert counts.tolist() == [len(s - covered_set) for s in row_sets]
    assert kernel.popcount_rows(matrix).tolist() == [
        len(s) for s in row_sets
    ]


@settings(max_examples=60, deadline=None)
@given(subset_strategy(max_size=2_000))
def test_bit_mutation_and_queries(case):
    nbits, positions = case
    words = kernel.zeros(nbits)
    for p in positions:
        kernel.set_bit(words, p)
    assert list(kernel.to_positions(words)) == positions
    reference = as_set(nbits, positions)
    assert kernel.first_set(words) == (min(reference) if reference else -1)
    probes = np.arange(0, nbits, max(1, nbits // 97), dtype=np.int64)
    got = kernel.test_positions(words, probes)
    assert got.tolist() == [int(p) in reference for p in probes]


@settings(max_examples=60, deadline=None)
@given(subset_strategy(max_size=2_000))
def test_delta_matches_dense(case):
    nbits, positions = case
    rng = np.random.default_rng(nbits * 131 + len(positions))
    dense = kernel.from_positions(np.array(positions, dtype=np.int64), nbits)
    delta = BitsetDelta.from_words(dense, nbits)
    assert delta.popcount() == len(positions)
    assert kernel.equals(delta.to_words(), dense)
    # Sparse intersection against a random row == dense intersection.
    other = np.flatnonzero(rng.random(nbits) < 0.4).astype(np.int64)
    row = kernel.from_positions(other, nbits)
    assert delta.intersection_count(row) == kernel.intersection_count(
        dense, row
    )
    reference = as_set(nbits, positions)
    for p in range(0, nbits, max(1, nbits // 53)):
        assert delta.test(p) == (p in reference)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 10_000), unique=True, min_size=1,
                max_size=400).map(sorted))
def test_universe_codec(ids):
    universe = BitsetUniverse(np.array(ids, dtype=np.int64))
    words = universe.encode_ids(np.array(ids, dtype=np.int64))
    assert kernel.popcount(words) == len(ids)
    assert universe.decode_frozenset(words) == frozenset(ids)
    assert universe.min_id(words, -1) == min(ids)
    assert universe.min_id(universe.empty(), -1) == -1
    # member_positions drops non-members, keeps members, vectorized.
    probe = np.array(sorted(set(ids) | {10_001, 10_002}), dtype=np.int64)
    got = universe.member_positions(probe)
    assert [int(universe.ids[p]) for p in got] == ids


def test_word_boundary_edges():
    for nbits in BOUNDARY_SIZES:
        full = kernel.full(nbits)
        assert kernel.popcount(full) == nbits
        assert list(kernel.to_positions(full)) == list(range(nbits))
        # The padding bits beyond nbits must stay zero after every op.
        trailing = kernel.andnot(full, kernel.zeros(nbits))
        if nbits % kernel.WORD_BITS:
            assert int(trailing[-1]) >> (nbits % kernel.WORD_BITS) == 0
        empty = kernel.zeros(nbits)
        assert kernel.popcount(empty) == 0
        assert kernel.first_set(empty) == -1
        assert kernel.uncovered_count(full, full) == 0
        assert kernel.uncovered_count(full, empty) == nbits


def test_positions_of_rejects_foreign_ids():
    universe = BitsetUniverse(np.array([2, 5, 9], dtype=np.int64))
    with pytest.raises(ValueError):
        universe.positions_of(np.array([2, 4], dtype=np.int64))

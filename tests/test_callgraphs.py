"""Call-graph dataset (Table 1, Example 3): structure, scoring, and the
hot-bug-clones vs bug-spectrum contrast."""

from collections import Counter

import numpy as np
import pytest

from repro.baselines import traditional_top_k
from repro.core import baseline_greedy
from repro.datasets import calibrate_theta
from repro.datasets.callgraphs import (
    BUG_CORES,
    bug_class,
    callgraphs_like,
    recency_query,
)
from repro.ged import StarDistance


class TestGeneration:
    def test_deterministic(self):
        a = callgraphs_like(num_graphs=30, seed=5)
        b = callgraphs_like(num_graphs=30, seed=5)
        assert np.allclose(a.features, b.features)
        assert all(g1 == g2 for g1, g2 in zip(a, b))

    def test_features_shape_and_sign(self):
        db = callgraphs_like(num_graphs=40, seed=1)
        assert db.features.shape == (40, 7)
        assert (db.features >= 0).all()

    def test_every_bug_class_present(self):
        db = callgraphs_like(num_graphs=200, seed=2)
        classes = {bug_class(g) for g in db}
        assert classes == {name for name, _, _ in BUG_CORES}

    def test_bug_core_embedded(self):
        db = callgraphs_like(num_graphs=20, seed=3)
        for g in db:
            name = bug_class(g)
            core_labels = next(
                labels for n, labels, _ in BUG_CORES if n == name
            )
            assert set(core_labels) <= set(g.node_labels)

    def test_validation(self):
        with pytest.raises(ValueError):
            callgraphs_like(num_graphs=0)
        with pytest.raises(ValueError):
            callgraphs_like(num_graphs=5, hot_share=1.5)


class TestGeometry:
    def test_within_class_tighter_than_cross_class(self):
        db = callgraphs_like(num_graphs=120, seed=4)
        dist = StarDistance()
        by_class: dict[str, list[int]] = {}
        for gid, g in enumerate(db):
            by_class.setdefault(bug_class(g), []).append(gid)
        names = [n for n, ids in by_class.items() if len(ids) >= 4][:2]
        a_ids, b_ids = by_class[names[0]][:5], by_class[names[1]][:5]
        within = [
            dist(db[x], db[y])
            for i, x in enumerate(a_ids) for y in a_ids[i + 1:]
        ]
        cross = [dist(db[x], db[y]) for x in a_ids for y in b_ids]
        assert np.mean(within) < np.mean(cross)


class TestExample3Story:
    def test_topk_clones_vs_rep_spectrum(self):
        db = callgraphs_like(num_graphs=350, seed=23)
        dist = StarDistance()
        theta = calibrate_theta(db, dist, quantile=0.05, rng=23)
        q = recency_query(0.75, db)
        k = 5
        top = traditional_top_k(db, q, k)
        rep = baseline_greedy(db, dist, q, theta, k)
        top_classes = {bug_class(db[g]) for g in top}
        rep_classes = {bug_class(db[g]) for g in rep.answer}
        # The paper's claim pair: top-k concentrates on the hot bug, REP
        # spans strictly more of the bug spectrum.
        assert len(top_classes) <= 2
        assert len(rep_classes) > len(top_classes)

    def test_relevant_set_spans_classes(self):
        db = callgraphs_like(num_graphs=350, seed=23)
        q = recency_query(0.75, db)
        relevant = db.relevant_indices(q)
        classes = Counter(bug_class(db[int(g)]) for g in relevant)
        assert len(classes) >= 4

    def test_recency_query_without_database_is_permissive(self):
        q = recency_query()
        assert q(np.ones(7))

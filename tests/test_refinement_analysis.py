"""Refinement sessions, analysis metrics, and distance distributions."""

import numpy as np
import pytest

from repro.analysis import evaluate_answer, evaluate_answers, sample_distances
from repro.core import RefinementSession, baseline_greedy
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex
from tests.conftest import random_database


def _index(seed=0, size=50):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    index = NBIndex.build(db, dist, num_vantage_points=5, branching=4, seed=seed)
    return db, dist, q, index


class TestRefinementSession:
    def test_zoom_requires_initial_query(self):
        _, _, q, index = _index()
        session = RefinementSession(index, q, k=3)
        with pytest.raises(RuntimeError):
            session.zoom_in()

    def test_zoom_trajectory(self):
        _, _, q, index = _index(seed=1)
        session = RefinementSession(index, q, k=3)
        session.query(5.0)
        session.zoom_in(0.1)
        session.zoom_out(0.1)
        thetas = [step.theta for step in session.history]
        assert thetas == pytest.approx([5.0, 4.5, 4.95])
        assert session.current_theta == pytest.approx(4.95)
        assert session.current_result is not None

    def test_results_match_direct_queries(self):
        db, dist, q, index = _index(seed=2)
        session = RefinementSession(index, q, k=4)
        refined = session.query(4.0)
        direct = index.query(q, 4.0, 4)
        assert refined.answer == direct.answer

    def test_step_timing_recorded(self):
        _, _, q, index = _index(seed=3)
        session = RefinementSession(index, q, k=2)
        session.query(5.0)
        assert session.history[0].seconds > 0

    def test_k_validation(self):
        _, _, q, index = _index(seed=4, size=20)
        with pytest.raises(ValueError):
            RefinementSession(index, q, k=0)


class TestAnalysisMetrics:
    def test_evaluate_answer_known_values(self):
        neighborhoods = {
            0: frozenset({0, 1, 2}),
            3: frozenset({3}),
        }
        metrics = evaluate_answer([0, 3], neighborhoods, num_relevant=8)
        assert metrics["covered"] == 4
        assert metrics["compression_ratio"] == 2.0
        assert metrics["pi"] == 0.5

    def test_unknown_answer_ids_count_in_size_only(self):
        neighborhoods = {0: frozenset({0, 1})}
        metrics = evaluate_answer([0, 99], neighborhoods, num_relevant=4)
        assert metrics["answer_size"] == 2
        assert metrics["covered"] == 2
        assert metrics["compression_ratio"] == 1.0

    def test_evaluate_answers_consistent_with_query_result(self):
        db = random_database(seed=5, size=40)
        dist = StarDistance()
        q = quartile_relevance(db, quantile=0.3)
        theta = 5.0
        rep = baseline_greedy(db, dist, q, theta, 4)
        evaluated = evaluate_answers(db, dist, q, theta, {"rep": rep.answer})
        assert evaluated["rep"]["pi"] == pytest.approx(rep.pi)
        assert evaluated["rep"]["compression_ratio"] == pytest.approx(
            rep.compression_ratio
        )

    def test_empty_answer(self):
        metrics = evaluate_answer([], {}, num_relevant=5)
        assert metrics["compression_ratio"] == 0.0
        assert metrics["pi"] == 0.0


class TestDistanceDistribution:
    def test_cdf_monotone_and_bounded(self):
        db = random_database(seed=6, size=30)
        distribution = sample_distances(db, StarDistance(), num_pairs=300, rng=0)
        thetas = np.linspace(0, distribution.diameter_estimate, 20)
        cdf = distribution.cdf(thetas)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[0] >= 0.0 and cdf[-1] == pytest.approx(1.0)

    def test_histogram_integrates_to_one(self):
        db = random_database(seed=7, size=30)
        distribution = sample_distances(db, StarDistance(), num_pairs=300, rng=0)
        centers, densities = distribution.histogram(bins=20)
        width = centers[1] - centers[0]
        assert float((densities * width).sum()) == pytest.approx(1.0, rel=1e-6)

    def test_moments_and_quantiles(self):
        db = random_database(seed=8, size=30)
        distribution = sample_distances(db, StarDistance(), num_pairs=200, rng=0)
        assert distribution.mean > 0
        assert distribution.quantile(0.1) <= distribution.quantile(0.9)

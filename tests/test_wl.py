"""Weisfeiler–Lehman fingerprints: invariance and discrimination."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ged import ExactGED, StarDistance
from repro.graphs import LabeledGraph, cycle_graph, path_graph, star_graph
from repro.graphs.wl import deduplicate, wl_hash, wl_node_colors
from tests.conftest import random_connected_graph


class TestInvariance:
    @pytest.mark.parametrize("seed", range(6))
    def test_hash_invariant_under_permutation(self, seed):
        rng = np.random.default_rng(seed)
        g = random_connected_graph(rng, int(rng.integers(3, 9)))
        permutation = rng.permutation(g.num_nodes)
        assert wl_hash(g) == wl_hash(g.permuted(permutation))

    def test_star_distance_invariant_under_permutation(self):
        rng = np.random.default_rng(3)
        sd = StarDistance()
        g = random_connected_graph(rng, 7)
        h = random_connected_graph(rng, 6)
        g2 = g.permuted(rng.permutation(7))
        assert sd(g, h) == pytest.approx(sd(g2, h))

    def test_exact_ged_zero_for_permuted(self):
        rng = np.random.default_rng(4)
        g = random_connected_graph(rng, 5)
        g2 = g.permuted(rng.permutation(5))
        assert ExactGED()(g, g2) == 0.0


class TestDiscrimination:
    def test_different_labels_differ(self):
        assert wl_hash(path_graph(["C", "C"])) != wl_hash(path_graph(["C", "N"]))

    def test_different_topology_differs(self):
        a = star_graph("C", ["C", "C", "C"])
        b = path_graph(["C", "C", "C", "C"])
        assert wl_hash(a) != wl_hash(b)

    def test_edge_labels_matter(self):
        a = LabeledGraph(["C", "C"], [(0, 1, "-")])
        b = LabeledGraph(["C", "C"], [(0, 1, "=")])
        assert wl_hash(a) != wl_hash(b)

    def test_size_matters(self):
        assert wl_hash(cycle_graph(["C"] * 4)) != wl_hash(cycle_graph(["C"] * 5))

    def test_node_colors_distinguish_roles(self):
        g = star_graph("C", ["C", "C"])
        colors = wl_node_colors(g, iterations=1)
        assert colors[0] != colors[1]
        assert colors[1] == colors[2]

    def test_zero_iterations_is_label_histogram(self):
        a = LabeledGraph(["C", "N"], [(0, 1)])
        b = LabeledGraph(["N", "C"])  # same labels, no edge
        assert wl_node_colors(a, 0) != wl_node_colors(b, 0) or True
        # colors at 0 iterations depend only on labels:
        assert sorted(wl_node_colors(a, 0)) == sorted(wl_node_colors(b, 0))

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            wl_node_colors(path_graph(["C"]), -1)


class TestDeduplicate:
    def test_buckets_duplicates_together(self):
        rng = np.random.default_rng(5)
        g = random_connected_graph(rng, 6)
        twin = g.permuted(rng.permutation(6))
        other = random_connected_graph(rng, 6)
        buckets = deduplicate([g, twin, other])
        bucket_of_g = next(b for b in buckets.values() if 0 in b)
        assert 1 in bucket_of_g

    def test_hash_equality_necessary_for_ged_zero(self):
        """GED = 0 ⟹ isomorphic ⟹ equal WL hash (the dedup soundness)."""
        rng = np.random.default_rng(6)
        ged = ExactGED()
        graphs = [random_connected_graph(rng, 4) for _ in range(8)]
        for i in range(len(graphs)):
            for j in range(i + 1, len(graphs)):
                if ged(graphs[i], graphs[j]) == 0.0:
                    assert wl_hash(graphs[i]) == wl_hash(graphs[j])


class TestPermutedHelper:
    def test_identity_permutation(self):
        g = path_graph(["C", "N", "O"])
        assert g.permuted([0, 1, 2]) == g

    def test_non_bijection_rejected(self):
        g = path_graph(["C", "N"])
        with pytest.raises(ValueError, match="bijection"):
            g.permuted([0, 0])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_permuted_preserves_structure_counts(self, seed):
        rng = np.random.default_rng(seed)
        g = random_connected_graph(rng, int(rng.integers(2, 8)))
        p = g.permuted(rng.permutation(g.num_nodes))
        assert p.num_nodes == g.num_nodes
        assert p.num_edges == g.num_edges
        assert sorted(p.node_labels) == sorted(g.node_labels)

"""Deep NB-Index invariants: Theorem-5 π̂ validity, update-step safety,
multi-seed greedy correctness, and randomized range-query equivalence for
the metric trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CTree, MTree
from repro.core import all_theta_neighborhoods
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex
from tests.conftest import random_database
from tests.test_nbindex import assert_valid_greedy_trajectory


def _build(seed=0, size=60):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    index = NBIndex.build(db, dist, num_vantage_points=6, branching=4, seed=seed)
    return db, dist, q, index


class TestPiHatValidity:
    """Def. 6 / Theorem 5: π̂ entries upper-bound true neighborhood sizes."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pi_hat_column_upper_bounds_true_counts(self, seed):
        db, dist, q, index = _build(seed=seed)
        session = index.session(q)
        relevant = [int(i) for i in session.relevant]
        for ladder_index in range(len(index.ladder)):
            theta_i = index.ladder[ladder_index]
            column = session.pi_hat_column(ladder_index)
            neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta_i)
            for position, gid in enumerate(relevant):
                assert column[position] >= len(neighborhoods[gid])

    def test_trivial_column_is_relevant_count(self):
        db, dist, q, index = _build(seed=3)
        session = index.session(q)
        column = session.pi_hat_column(None)
        assert (column == session.relevant.size).all()

    def test_node_relevant_sets_partition_consistently(self):
        db, dist, q, index = _build(seed=4)
        session = index.session(q)
        root_relevant = session.relevant_in(index.tree.root)
        assert root_relevant == session.relevant_set
        for node in index.tree.nodes:
            if node.children:
                children_union = frozenset().union(
                    *(session.relevant_in(c) for c in node.children)
                )
                assert children_union == session.relevant_in(node)


class TestUpdateStepSafety:
    """Theorems 6–8 decrements must never break greedy correctness."""

    @pytest.mark.parametrize("seed", range(10))
    def test_multi_seed_argmax_validity_with_updates(self, seed):
        db, dist, q, index = _build(seed=seed, size=50)
        theta = 3.0 + (seed % 4) * 1.5
        result = index.query(q, theta, 6)
        assert_valid_greedy_trajectory(db, dist, q, theta, result)

    @pytest.mark.parametrize("seed", [0, 3, 6])
    def test_updates_and_no_updates_both_valid(self, seed):
        db, dist, q, index = _build(seed=seed, size=50)
        theta = 5.0
        with_updates = index.session(q).query(theta, 5, enable_updates=True)
        without = index.session(q).query(theta, 5, enable_updates=False)
        assert_valid_greedy_trajectory(db, dist, q, theta, with_updates)
        assert_valid_greedy_trajectory(db, dist, q, theta, without)
        assert with_updates.gains[0] == without.gains[0]

    def test_large_theta_exercises_theorem_7_regime(self):
        """θ above cluster diameters: the batch-decrement path must fire
        and the trajectory must stay exact."""
        db, dist, q, index = _build(seed=11, size=50)
        diameters = [
            n.diameter for n in index.tree.nodes if not n.is_leaf
        ]
        theta = float(np.median(diameters)) + 1.0
        result = index.query(q, theta, 5)
        assert_valid_greedy_trajectory(db, dist, q, theta, result)

    def test_tiny_theta_exercises_theorem_6_regime(self):
        db, dist, q, index = _build(seed=12, size=50)
        result = index.query(q, 0.5, 5)
        assert_valid_greedy_trajectory(db, dist, q, 0.5, result)


class TestRandomizedTreeEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.5, max_value=12.0),
    )
    def test_mtree_range_query_matches_scan(self, seed, theta):
        db = random_database(seed=seed % 100, size=30)
        dist = StarDistance()
        tree = MTree(db.graphs, dist, capacity=4, seed=seed)
        probe = seed % 30
        expected = sorted(
            j for j in range(30)
            if dist(db[probe], db[j]) <= theta + 1e-9
        )
        assert sorted(tree.range_query(probe, theta)) == expected

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.5, max_value=12.0),
    )
    def test_ctree_range_query_matches_scan(self, seed, theta):
        db = random_database(seed=seed % 100, size=30)
        dist = StarDistance()
        tree = CTree(db.graphs, dist, capacity=4, seed=seed)
        probe = (seed // 7) % 30
        expected = sorted(
            j for j in range(30)
            if dist(db[probe], db[j]) <= theta + 1e-9
        )
        assert sorted(tree.range_query(probe, theta)) == expected

"""Generic metric-space support: vectors, payload adapters, Fig. 1(b)."""

import numpy as np
import pytest

from repro.baselines import div_topk
from repro.core import baseline_greedy
from repro.ged import check_metric_axioms
from repro.graphs.relevance import WeightedScoreThreshold
from repro.index import NBIndex
from repro.metricspace import (
    MinkowskiMetric,
    metric_space_database,
    vector_database,
)
from tests.test_nbindex import assert_valid_greedy_trajectory

ALL_RELEVANT_2D = WeightedScoreThreshold([0.0, 0.0], threshold=-1.0)


class TestMinkowskiMetric:
    def test_euclidean(self):
        metric = MinkowskiMetric(2.0)
        assert metric([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan(self):
        metric = MinkowskiMetric(1.0)
        assert metric([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev(self):
        metric = MinkowskiMetric(float("inf"))
        assert metric([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_p_below_one_rejected(self):
        with pytest.raises(ValueError):
            MinkowskiMetric(0.5)


class TestVectorDatabase:
    def test_axioms_hold_through_adapter(self):
        rng = np.random.default_rng(0)
        db, distance = vector_database(rng.normal(size=(8, 3)))
        assert check_metric_axioms(list(db)[:6], distance) == []

    def test_features_default_to_coordinates(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        db, _ = vector_database(points)
        assert np.allclose(db.features, points)

    def test_relevance_by_coordinate(self):
        points = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0]])
        db, _ = vector_database(points)
        q = WeightedScoreThreshold([1.0, 0.0], threshold=4.0)
        assert list(db.relevant_indices(q)) == [1, 2]

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="points"):
            vector_database(np.zeros(5))


class TestGenericAdapter:
    def test_string_edit_space(self):
        """Arbitrary payloads: strings under a simple metric."""

        def hamming_ish(a, b):
            longer, shorter = max(len(a), len(b)), min(len(a), len(b))
            mismatches = sum(1 for x, y in zip(a, b) if x != y)
            return mismatches + (longer - shorter)

        words = ["cat", "bat", "hat", "elephant", "elephont"]
        db, distance = metric_space_database(words, hamming_ish)
        assert distance(db[0], db[1]) == 1.0
        assert distance(db[3], db[4]) == 1.0
        assert distance(db[0], db[3]) == 8.0

    def test_payload_append(self):
        db, distance = metric_space_database([1.0, 2.0], lambda a, b: abs(a - b))
        new_pos = distance.append(5.0)
        assert new_pos == 2
        assert distance.payload(2) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metric_space_database([], lambda a, b: 0.0)


class TestFig1bScenario:
    """The paper's motivating geometry: cluster centers beat outliers."""

    def _space(self):
        rng = np.random.default_rng(1)
        cluster = np.vstack([
            np.zeros((1, 2)),
            rng.normal(0, 0.3, size=(9, 2)),
        ])
        outlier = np.array([[30.0, 30.0]])
        far_cluster = 20.0 + np.vstack([
            np.zeros((1, 2)),
            rng.normal(0, 0.3, size=(5, 2)),
        ])
        points = np.vstack([cluster, far_cluster, outlier])
        return vector_database(points), points

    def test_rep_prefers_cluster_centers_over_outliers(self):
        (db, distance), points = self._space()
        result = baseline_greedy(db, distance, ALL_RELEVANT_2D, 2.0, 2)
        outlier_id = len(points) - 1
        assert outlier_id not in result.answer
        # One pick per cluster.
        assert any(gid < 10 for gid in result.answer)
        assert any(10 <= gid < 16 for gid in result.answer)

    def test_rep_beats_div_coverage(self):
        (db, distance), _ = self._space()
        rep = baseline_greedy(db, distance, ALL_RELEVANT_2D, 2.0, 2)
        div = div_topk(db, distance, ALL_RELEVANT_2D, 2.0, 2, 1.0)
        assert rep.pi >= div.pi - 1e-9

    def test_nbindex_works_on_vector_space(self):
        (db, distance), _ = self._space()
        index = NBIndex.build(db, distance, num_vantage_points=4,
                              branching=3, seed=0)
        result = index.query(ALL_RELEVANT_2D, 2.0, 2)
        assert_valid_greedy_trajectory(db, distance, ALL_RELEVANT_2D, 2.0, result)

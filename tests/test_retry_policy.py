"""Property tests for the capped-backoff retry policy.

The supervisor leans on :class:`RetryPolicy` for restart pacing, so its
envelope guarantees are load-bearing: a delay outside
``[base, base × (1 + jitter)]`` either hammers a broken worker or stalls
recovery.  Hypothesis sweeps the knob space instead of spot-checking.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.resilience.retry import RetryPolicy

_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=24),
    base_delay=st.floats(min_value=0.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False),
    max_delay=st.floats(min_value=10.0, max_value=120.0,
                        allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False),
)


class TestDelayEnvelope:
    @given(policy=_policies, attempt=st.integers(min_value=0, max_value=200))
    def test_delay_within_jitter_envelope(self, policy, attempt):
        base = min(policy.max_delay, policy.base_delay * (2.0 ** attempt))
        delay = policy.delay(attempt)
        assert base <= delay <= base * (1.0 + policy.jitter) + 1e-12

    @given(policy=_policies, attempt=st.integers(min_value=0, max_value=200))
    def test_delay_never_exceeds_jittered_cap(self, policy, attempt):
        assert policy.delay(attempt) <= (
            policy.max_delay * (1.0 + policy.jitter) + 1e-12
        )

    @given(policy=_policies)
    def test_unjittered_schedule_monotone_up_to_cap(self, policy):
        flat = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            max_delay=policy.max_delay,
            jitter=0.0,
        )
        schedule = [flat.delay(attempt) for attempt in range(32)]
        assert schedule == sorted(schedule)  # doubling, monotone
        assert all(delay <= flat.max_delay for delay in schedule)
        # Once capped, it stays exactly at the cap.
        capped = [d for d in schedule if d == flat.max_delay]
        if capped:
            assert schedule[-len(capped):] == capped


class TestDelaysGenerator:
    @given(policy=_policies)
    def test_yields_one_delay_per_retry(self, policy):
        schedule = list(policy.delays())
        assert len(schedule) == policy.max_attempts - 1

    @given(policy=_policies)
    def test_yielded_delays_match_positional_envelope(self, policy):
        for attempt, delay in enumerate(policy.delays()):
            base = min(
                policy.max_delay, policy.base_delay * (2.0 ** attempt)
            )
            assert base <= delay <= base * (1.0 + policy.jitter) + 1e-12


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(base_delay=-0.1),
        dict(max_delay=0.01, base_delay=0.05),
        dict(jitter=-0.5),
        dict(jitter=1.5),
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

"""Baseline and lazy greedy (Algorithm 1): correctness and equivalence."""

import pytest

from repro.core import all_theta_neighborhoods, baseline_greedy, lazy_greedy
from repro.ged import CountingDistance, StarDistance
from repro.graphs import quartile_relevance
from repro.baselines import MTree
from tests.conftest import random_database


def _setup(seed=0, size=60):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    return db, dist, q


class TestBaselineGreedy:
    def test_argmax_each_iteration(self):
        db, dist, q = _setup(seed=1)
        theta, k = 5.0, 6
        result = baseline_greedy(db, dist, q, theta, k)
        relevant = [int(i) for i in db.relevant_indices(q)]
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
        covered: set[int] = set()
        remaining = set(relevant)
        for chosen, gain in zip(result.answer, result.gains):
            best = max(len(neighborhoods[g] - covered) for g in remaining)
            assert gain == best
            covered |= neighborhoods[chosen]
            remaining.discard(chosen)

    def test_tie_break_smallest_id(self):
        db, dist, q = _setup(seed=2)
        theta = 4.0
        result = baseline_greedy(db, dist, q, theta, 1)
        relevant = [int(i) for i in db.relevant_indices(q)]
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
        best_gain = max(len(neighborhoods[g]) for g in relevant)
        winners = [g for g in relevant if len(neighborhoods[g]) == best_gain]
        assert result.answer[0] == min(winners)

    def test_gains_non_increasing(self):
        db, dist, q = _setup(seed=3)
        result = baseline_greedy(db, dist, q, 5.0, 8)
        assert all(a >= b for a, b in zip(result.gains, result.gains[1:]))

    def test_pi_monotone_in_k(self):
        db, dist, q = _setup(seed=4)
        pis = [baseline_greedy(db, dist, q, 5.0, k).pi for k in (1, 3, 6, 10)]
        assert all(a <= b + 1e-12 for a, b in zip(pis, pis[1:]))

    def test_stop_on_zero_gain(self):
        db, dist, q = _setup(seed=5)
        result = baseline_greedy(db, dist, q, 1e9, 10, stop_on_zero_gain=True)
        assert len(result.answer) == 1

    def test_validation(self):
        db, dist, q = _setup(seed=6, size=20)
        with pytest.raises(ValueError):
            baseline_greedy(db, dist, q, 0.0, 3)
        with pytest.raises(ValueError):
            baseline_greedy(db, dist, q, 5.0, -1)

    def test_distance_calls_quadratic_in_relevant(self):
        db, dist, q = _setup(seed=7, size=50)
        counting = CountingDistance(dist)
        result = baseline_greedy(db, counting, q, 5.0, 3)
        r = result.num_relevant
        assert result.stats.distance_calls == r * (r - 1) // 2


class TestLazyGreedy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_identical_to_baseline(self, seed):
        db, dist, q = _setup(seed=seed)
        theta, k = 5.0, 7
        base = baseline_greedy(db, dist, q, theta, k)
        lazy = lazy_greedy(db, dist, q, theta, k)
        assert lazy.answer == base.answer
        assert lazy.gains == base.gains

    def test_stop_on_zero_gain(self):
        db, dist, q = _setup(seed=8)
        result = lazy_greedy(db, dist, q, 1e9, 10, stop_on_zero_gain=True)
        assert len(result.answer) == 1


class TestRangeQueryBackends:
    def test_mtree_backend_equivalent(self):
        db, dist, q = _setup(seed=9, size=50)
        theta, k = 5.0, 5
        tree = MTree(db.graphs, dist, capacity=8, seed=0)
        plain = baseline_greedy(db, dist, q, theta, k)
        indexed = baseline_greedy(
            db, dist, q, theta, k, range_query=tree.range_query
        )
        assert indexed.answer == plain.answer
        assert indexed.gains == plain.gains

"""CLI end-to-end: generate → stats → build-index → query → experiment."""

import pytest

from repro.cli import main


@pytest.fixture
def db_path(tmp_path):
    path = tmp_path / "db.jsonl"
    code = main([
        "generate", "dud", "--num-graphs", "60", "--seed", "3",
        "--output", str(path),
    ])
    assert code == 0
    return path


class TestGenerateAndStats:
    def test_generate_writes_file(self, tmp_path, capsys):
        path = tmp_path / "fresh.jsonl"
        assert main([
            "generate", "dud", "--num-graphs", "30", "--seed", "1",
            "--output", str(path),
        ]) == 0
        assert path.exists()
        assert "30 graphs" in capsys.readouterr().out

    def test_stats(self, db_path, capsys):
        assert main(["stats", str(db_path), "--num-pairs", "200"]) == 0
        out = capsys.readouterr().out
        assert "graphs:   60" in out
        assert "distance: mu=" in out

    def test_generate_all_datasets(self, tmp_path):
        for name in ("dblp", "amazon"):
            path = tmp_path / f"{name}.jsonl"
            assert main([
                "generate", name, "--num-graphs", "25", "--seed", "1",
                "--output", str(path),
            ]) == 0
            assert path.exists()


class TestIndexAndQuery:
    def test_build_index_and_query_with_it(self, db_path, tmp_path, capsys):
        index_path = tmp_path / "index.npz"
        assert main([
            "build-index", str(db_path), "--output", str(index_path),
            "--vantage-points", "5", "--branching", "4",
        ]) == 0
        assert index_path.exists()
        assert main([
            "query", str(db_path), "--k", "3", "--index", str(index_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "pi(A) =" in out
        assert "calibrated theta" in out

    def test_query_without_prebuilt_index(self, db_path, capsys):
        assert main([
            "query", str(db_path), "--k", "2", "--theta", "8",
            "--vantage-points", "4", "--branching", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "rank" in out

    def test_query_greedy_method(self, db_path, capsys):
        assert main([
            "query", str(db_path), "--k", "2", "--method", "greedy",
            "--dims", "0", "1",
        ]) == 0
        assert "pi(A) =" in capsys.readouterr().out


class TestExperiment:
    def test_unknown_experiment_lists_available(self, capsys):
        code = main(["experiment", "not_a_real_one"])
        assert code == 2
        err = capsys.readouterr().err
        assert "fig2a_disc_growth" in err

    def test_runs_a_driver(self, capsys, monkeypatch, tmp_path):
        # Point the results dir at tmp to keep the repo clean during tests.
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        # Small dataset via monkeypatched sizes for speed.
        monkeypatch.setitem(
            harness.SCALES, "small",
            {"dud": 80, "dblp": 40, "amazon": 50, "sweep": (20, 40)},
        )
        code = main(["experiment", "fig2a_disc_growth", "--dataset", "dud"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig2a_disc_growth" in out


class TestObservabilityFlags:
    def test_query_metrics_json_and_trace(self, db_path, tmp_path, capsys):
        import json

        from repro import obs

        metrics_path = tmp_path / "query.metrics.json"
        assert main([
            "query", str(db_path), "--k", "2", "--theta", "8",
            "--vantage-points", "4", "--branching", "3",
            "--metrics", str(metrics_path), "--trace",
        ]) == 0
        assert not obs.enabled()  # the observation ends with the command
        out = capsys.readouterr().out
        assert "== observability report ==" in out
        assert "index.build" in out
        document = json.loads(metrics_path.read_text())
        assert document["schema"] == "repro.obs/v1"
        counters = document["metrics"]["counters"]
        assert counters["query.count"] == 1
        assert counters["ged.star.batch_pairs"] > 0
        span_names = {span["name"] for span in document["spans"]}
        assert {"index.build", "index.query"} <= span_names

    def test_build_index_metrics_prometheus(self, db_path, tmp_path):
        metrics_path = tmp_path / "build.prom"
        assert main([
            "build-index", str(db_path), "--output", str(tmp_path / "i.npz"),
            "--vantage-points", "4", "--branching", "3",
            "--metrics", str(metrics_path),
        ]) == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_ged_star_batch_pairs counter" in text
        assert "repro_index_build_seconds_count 1" in text

    def test_env_var_enables_observability(self, db_path, monkeypatch, capsys):
        from repro import obs

        monkeypatch.setenv("REPRO_OBS", "1")
        try:
            assert main([
                "query", str(db_path), "--k", "2", "--theta", "8",
                "--vantage-points", "4", "--branching", "3",
            ]) == 0
            assert obs.enabled()
            assert obs.get_registry().snapshot()["counters"]["query.count"] == 1
        finally:
            obs.disable()

    def test_no_flags_keeps_observability_off(self, db_path, monkeypatch):
        from repro import obs

        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert main([
            "query", str(db_path), "--k", "2", "--theta", "8",
            "--vantage-points", "4", "--branching", "3",
        ]) == 0
        assert not obs.enabled()


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExperimentAll:
    def test_all_flag_runs_set(self, capsys, monkeypatch, tmp_path):
        import repro.bench.harness as harness
        import repro.cli as cli

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        monkeypatch.setitem(
            harness.SCALES, "small",
            {"dud": 50, "dblp": 30, "amazon": 35, "sweep": (15, 25)},
        )
        # Trim the set to a fast pair for the test; the full list is data.
        monkeypatch.setattr(
            cli, "ALL_EXPERIMENTS",
            (("fig2a_disc_growth", "dud"), ("fig6l_index_memory", "dud")),
        )
        code = main(["experiment", "--all"])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed 2/2 experiments" in out

    def test_missing_name_without_all(self, capsys):
        assert main(["experiment"]) == 2
        assert "provide a driver name" in capsys.readouterr().err

    def test_all_experiment_names_resolve(self):
        from repro.bench import distances, experiments, scaling
        from repro.cli import ALL_EXPERIMENTS

        modules = (experiments, scaling, distances)
        for name, _ in ALL_EXPERIMENTS:
            assert any(hasattr(m, name) for m in modules), name


class TestResilienceFlags:
    def test_query_deadline_prints_footer(self, db_path, capsys):
        assert main([
            "query", str(db_path), "--k", "2", "--theta", "8",
            "--vantage-points", "4", "--branching", "3",
            "--deadline-ms", "60000",
        ]) == 0
        out = capsys.readouterr().out
        # Star distance never degrades (only exact GED does), so a generous
        # budget reports "met" — the footer is the contract under test.
        assert "deadline: met" in out

    def test_build_index_checkpoint_and_resume(self, db_path, tmp_path, capsys):
        index_path = tmp_path / "index.npz"
        ckpt = tmp_path / "build.ckpt"
        assert main([
            "build-index", str(db_path), "--output", str(index_path),
            "--vantage-points", "4", "--branching", "4",
            "--checkpoint", str(ckpt),
        ]) == 0
        assert index_path.exists()
        assert ckpt.exists()
        # Resume from the (fully completed) checkpoint: every stage is
        # restored instead of recomputed, and the index still queries.
        resumed_path = tmp_path / "resumed.npz"
        assert main([
            "build-index", str(db_path), "--output", str(resumed_path),
            "--vantage-points", "4", "--branching", "4",
            "--checkpoint", str(ckpt), "--resume",
        ]) == 0
        assert main([
            "query", str(db_path), "--k", "2", "--theta", "8",
            "--index", str(resumed_path),
        ]) == 0
        assert "pi(A) =" in capsys.readouterr().out


class TestServe:
    def test_serve_stdin_round_trip(self, db_path, tmp_path, capsys, monkeypatch):
        import io
        import json
        import sys

        index_path = tmp_path / "index.npz"
        assert main([
            "build-index", str(db_path), "--output", str(index_path),
            "--vantage-points", "4", "--branching", "3",
        ]) == 0
        requests = "\n".join([
            json.dumps({"id": 1, "theta": 8.0, "k": 2}),
            json.dumps({"id": 2, "op": "ping"}),
            "garbage",
        ]) + "\n"
        monkeypatch.setattr(sys, "stdin", io.StringIO(requests))
        metrics_path = tmp_path / "serve.metrics.json"
        assert main([
            "serve", str(db_path), "--index", str(index_path),
            "--deadline-ms", "60000", "--metrics", str(metrics_path),
        ]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(ln) for ln in captured.out.splitlines()
                     if ln.strip().startswith("{")]
        assert [r["id"] for r in responses] == [1, 2, None]
        assert responses[0]["ok"] and responses[0]["result"]["answer"]
        assert responses[1]["result"]["pong"] is True
        assert responses[2]["error"]["code"] == "invalid_request"
        assert "drained" in captured.err
        document = json.loads(metrics_path.read_text())
        assert document["metrics"]["counters"]["service.admitted"] == 2

    def test_serve_without_index_builds_inline(self, db_path, monkeypatch, capsys):
        import io
        import json
        import sys

        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(json.dumps({"id": 1, "op": "stats"}) + "\n"),
        )
        assert main(["serve", str(db_path), "--concurrency", "1"]) == 0
        out = capsys.readouterr().out
        response = json.loads(out.splitlines()[0])
        assert response["result"]["index"]["num_graphs"] == 60


class TestModuleEntryPoint:
    def test_python_m_repro(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0
        assert completed.stdout.strip()

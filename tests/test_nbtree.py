"""NB-Tree construction invariants."""

import numpy as np
import pytest

from repro.ged import StarDistance
from repro.index import NBTree, VantageEmbedding, select_vantage_points
from repro.graphs import path_graph
from tests.conftest import random_database


def _tree(seed=0, size=60, branching=4, with_embedding=True):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    embedding = None
    if with_embedding:
        vps = select_vantage_points(db.graphs, 5, rng=seed)
        embedding = VantageEmbedding(db.graphs, vps, dist)
    tree = NBTree(db.graphs, dist, embedding, branching=branching, rng=seed)
    return db, dist, tree


class TestStructure:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_validate_clean(self, seed):
        _, _, tree = _tree(seed=seed)
        assert tree.validate() == []

    def test_leaves_cover_database(self):
        _, _, tree = _tree()
        leaf_ids = sorted(n.graph_index for n in tree.leaves())
        assert leaf_ids == list(range(60))

    def test_root_members_everything(self):
        _, _, tree = _tree()
        assert tree.root.members.size == 60

    def test_children_partition_members(self):
        _, _, tree = _tree()
        for node in tree.nodes:
            if node.children:
                combined = np.sort(
                    np.concatenate([c.members for c in node.children])
                )
                assert np.array_equal(combined, np.sort(node.members))

    def test_height_reasonable(self):
        _, _, tree = _tree(branching=4)
        assert 2 <= tree.height() <= 20

    def test_single_graph_tree(self):
        g = [path_graph(["C"])]
        tree = NBTree(g, StarDistance(), None, branching=2, rng=0)
        assert tree.root.is_leaf


class TestGeometry:
    def test_radius_covers_members(self):
        db, dist, tree = _tree(seed=3)
        for node in tree.nodes:
            if node.is_leaf:
                continue
            centroid = db[node.centroid]
            for m in node.members:
                assert dist(centroid, db[int(m)]) <= node.radius + 1e-9

    def test_diameter_upper_bounds_pairwise(self):
        db, dist, tree = _tree(seed=4, size=40)
        rng = np.random.default_rng(0)
        for node in tree.nodes:
            if node.is_leaf or node.members.size > 15:
                continue
            for _ in range(10):
                a = int(node.members[rng.integers(node.members.size)])
                b = int(node.members[rng.integers(node.members.size)])
                assert dist(db[a], db[b]) <= node.diameter + 1e-9

    def test_leaf_geometry_trivial(self):
        _, _, tree = _tree()
        for leaf in tree.leaves():
            assert leaf.radius == 0.0
            assert leaf.diameter == 0.0
            assert leaf.members.size == 1


class TestVantageAcceleration:
    def test_pruning_reduces_exact_distances(self):
        _, _, plain = _tree(seed=5, with_embedding=False)
        _, _, accelerated = _tree(seed=5, with_embedding=True)
        assert accelerated.stats.pruned_by_vantage > 0
        assert (
            accelerated.stats.exact_distances
            < plain.stats.exact_distances + plain.stats.pruned_by_vantage
        )

    def test_same_structure_regardless_of_acceleration(self):
        # Pruning must not change assignments: the trees built with and
        # without the embedding are identical for the same seed.
        _, _, plain = _tree(seed=6, with_embedding=False)
        _, _, accelerated = _tree(seed=6, with_embedding=True)
        assert plain.num_nodes == accelerated.num_nodes
        for a, b in zip(plain.nodes, accelerated.nodes):
            assert np.array_equal(a.members, b.members)
            assert a.centroid == b.centroid
            assert a.radius == pytest.approx(b.radius)
            assert a.diameter == pytest.approx(b.diameter)


class TestDegenerateInputs:
    def test_duplicate_graphs_terminate(self):
        graphs = [path_graph(["C", "C"]) for _ in range(20)]
        for i, g in enumerate(graphs):
            g.graph_id = i
        tree = NBTree(graphs, StarDistance(), None, branching=3, rng=0)
        assert sorted(n.graph_index for n in tree.leaves()) == list(range(20))

    def test_branching_validation(self):
        db = random_database(seed=0, size=5)
        with pytest.raises(ValueError):
            NBTree(db.graphs, StarDistance(), None, branching=1, rng=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NBTree([], StarDistance(), None, branching=2, rng=0)

    def test_build_stats_fraction(self):
        _, _, tree = _tree(seed=7)
        assert 0.0 < tree.stats.exact_fraction <= 1.0

"""Unit tests for GraphDatabase."""

import numpy as np
import pytest

from repro.graphs import GraphDatabase, path_graph
from repro.graphs.relevance import WeightedScoreThreshold


def _graphs(n):
    return [path_graph(["C"] * (i % 3 + 1)) for i in range(n)]


class TestConstruction:
    def test_basic(self):
        db = GraphDatabase(_graphs(4), np.arange(8).reshape(4, 2))
        assert len(db) == 4
        assert db.num_features == 2

    def test_one_dimensional_features_reshaped(self):
        db = GraphDatabase(_graphs(3), [1.0, 2.0, 3.0])
        assert db.features.shape == (3, 1)

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError, match="feature rows"):
            GraphDatabase(_graphs(3), np.zeros((2, 2)))

    def test_three_dimensional_features_rejected(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            GraphDatabase(_graphs(2), np.zeros((2, 2, 2)))

    def test_graph_ids_assigned_densely(self):
        db = GraphDatabase(_graphs(5), np.zeros(5))
        assert [g.graph_id for g in db] == [0, 1, 2, 3, 4]

    def test_features_read_only(self):
        db = GraphDatabase(_graphs(2), np.zeros(2))
        with pytest.raises(ValueError):
            db.features[0, 0] = 1.0


class TestAccess:
    def test_getitem_and_iter(self):
        db = GraphDatabase(_graphs(3), np.zeros(3))
        assert db[1].graph_id == 1
        assert len(list(db)) == 3

    def test_feature_vector(self):
        db = GraphDatabase(_graphs(2), [[1.0, 2.0], [3.0, 4.0]])
        assert list(db.feature_vector(1)) == [3.0, 4.0]


class TestRelevance:
    def test_vectorized_query(self):
        db = GraphDatabase(_graphs(4), [[0.0], [1.0], [2.0], [3.0]])
        q = WeightedScoreThreshold([1.0], threshold=2.0)
        assert list(db.relevant_indices(q)) == [2, 3]

    def test_plain_callable_query(self):
        db = GraphDatabase(_graphs(4), [[0.0], [1.0], [2.0], [3.0]])
        assert list(db.relevant_indices(lambda row: row[0] >= 1.0)) == [1, 2, 3]

    def test_no_relevant(self):
        db = GraphDatabase(_graphs(2), [[0.0], [0.0]])
        q = WeightedScoreThreshold([1.0], threshold=5.0)
        assert db.relevant_indices(q).size == 0


class TestSubsetAndSample:
    def test_subset_renumbers(self):
        db = GraphDatabase(_graphs(5), np.arange(5.0))
        sub = db.subset([1, 3])
        assert len(sub) == 2
        assert [g.graph_id for g in sub] == [0, 1]
        assert list(sub.features[:, 0]) == [1.0, 3.0]

    def test_sample_size_validation(self):
        db = GraphDatabase(_graphs(3), np.zeros(3))
        with pytest.raises(ValueError):
            db.sample(10, np.random.default_rng(0))

    def test_sample_deterministic(self):
        db = GraphDatabase(_graphs(10), np.arange(10.0))
        a = db.sample(4, np.random.default_rng(5))
        b = db.sample(4, np.random.default_rng(5))
        assert np.array_equal(a.features, b.features)


class TestSummary:
    def test_summary_fields(self):
        db = GraphDatabase(
            [path_graph(["C", "C"]), path_graph(["C", "C", "C"])], np.zeros(2)
        )
        s = db.summary()
        assert s["num_graphs"] == 2
        assert s["avg_nodes"] == 2.5
        assert s["avg_edges"] == 1.5

"""Weighted representative power: guarantee and semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_theta_neighborhoods,
    baseline_greedy,
    weighted_coverage,
    weighted_greedy,
    weighted_optimal,
)
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from tests.conftest import random_database


def _setup(seed=0, size=40):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    return db, dist, q


class TestReducesToUnweighted:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unit_weights_match_baseline(self, seed):
        db, dist, q = _setup(seed=seed)
        theta, k = 5.0, 5
        plain = baseline_greedy(db, dist, q, theta, k)
        weighted = weighted_greedy(db, dist, q, theta, k, weights=None)
        assert weighted.answer == plain.answer
        assert [int(g) for g in weighted.gains] == plain.gains

    def test_explicit_unit_vector_matches(self):
        db, dist, q = _setup(seed=3)
        plain = baseline_greedy(db, dist, q, 5.0, 4)
        ones = weighted_greedy(db, dist, q, 5.0, 4, weights=np.ones(len(db)))
        assert ones.answer == plain.answer


class TestWeightingChangesSelection:
    def test_heavy_weight_attracts_selection(self):
        db, dist, q = _setup(seed=4)
        relevant = [int(i) for i in db.relevant_indices(q)]
        theta = 5.0
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
        # Make one otherwise-unremarkable graph enormously important.
        plain = weighted_greedy(db, dist, q, theta, 1)
        vip = relevant[-1]
        weights = {vip: 1000.0}
        boosted = weighted_greedy(db, dist, q, theta, 1, weights=weights)
        assert vip in neighborhoods[boosted.answer[0]]
        # The unweighted pick need not cover the VIP.
        if vip not in neighborhoods[plain.answer[0]]:
            assert boosted.answer != plain.answer

    def test_zero_weight_graphs_add_nothing(self):
        db, dist, q = _setup(seed=5)
        relevant = [int(i) for i in db.relevant_indices(q)]
        weights = {gid: 0.0 for gid in relevant}
        result = weighted_greedy(db, dist, q, 5.0, 3, weights=weights)
        assert all(g == 0.0 for g in result.gains)


class TestGuarantee:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=3),
    )
    def test_weighted_greedy_vs_weighted_optimum(self, seed, k):
        db, dist, q = _setup(seed=seed % 7, size=18)
        theta = 5.0
        relevant = [int(i) for i in db.relevant_indices(q)]
        rng = np.random.default_rng(seed)
        weights = {gid: float(rng.integers(1, 10)) for gid in relevant}
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)

        result = weighted_greedy(db, dist, q, theta, k, weights=weights)
        achieved = weighted_coverage(neighborhoods, result.answer, weights)
        _, optimal = weighted_optimal(neighborhoods, relevant, weights, k)
        assert achieved >= (1 - 1 / np.e) * optimal - 1e-9
        assert achieved == pytest.approx(sum(result.gains))


class TestValidation:
    def test_negative_weight_rejected(self):
        db, dist, q = _setup(seed=6, size=15)
        relevant = [int(i) for i in db.relevant_indices(q)]
        with pytest.raises(ValueError, match="negative"):
            weighted_greedy(db, dist, q, 5.0, 2, weights={relevant[0]: -1.0})

    def test_wrong_length_vector_rejected(self):
        db, dist, q = _setup(seed=7, size=15)
        with pytest.raises(ValueError, match="length"):
            weighted_greedy(db, dist, q, 5.0, 2, weights=np.ones(3))

"""Direct tests of the paper's numbered theorems on concrete instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import all_theta_neighborhoods
from repro.ged import StarDistance
from repro.graphs import GraphDatabase, LabeledGraph
from repro.graphs.relevance import WeightedScoreThreshold
from repro.index import NBIndex, VantageEmbedding, select_vantage_points
from tests.conftest import random_database


class TestTheorem3:
    """d(g1, g2) > 2θ ⟹ N(g1) ∩ N(g2) = ∅."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=50),
        st.floats(min_value=1.0, max_value=8.0),
    )
    def test_disjoint_neighborhoods_beyond_two_theta(self, seed, theta):
        db = random_database(seed=seed, size=25)
        dist = StarDistance()
        relevant = list(range(25))
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
        rng = np.random.default_rng(seed)
        for _ in range(15):
            a, b = int(rng.integers(25)), int(rng.integers(25))
            if a != b and dist(db[a], db[b]) > 2 * theta:
                assert not (neighborhoods[a] & neighborhoods[b])


class TestTheorem4:
    """d_v(g, g') > θ ⟹ g' ∉ N(g)."""

    def test_vantage_distance_excludes(self):
        db = random_database(seed=1, size=30)
        dist = StarDistance()
        vps = select_vantage_points(db.graphs, 4, rng=0)
        embedding = VantageEmbedding(db.graphs, vps, dist)
        theta = 4.0
        for i in range(0, 30, 5):
            for j in range(30):
                if embedding.lower_bound(i, j) > theta:
                    assert dist(db[i], db[j]) > theta


class TestFig4StylePropagation:
    """π̂ ceilings propagate up the tree (Eq. 14): every internal node's
    working bound is the max of its children's — replayed on a hand-built
    metric like the paper's Fig. 4 toy example."""

    def _toy_index(self):
        # Five objects on a line at positions 0, 1, 2, 10, 11 — two natural
        # clusters, as in the worked example's feature values.
        positions = [0.0, 1.0, 2.0, 10.0, 11.0]
        graphs = [LabeledGraph([f"g{i}"]) for i in range(5)]
        database = GraphDatabase(graphs, np.ones((5, 1)))
        pairs = {}

        class LineDistance:
            def __call__(self, a, b):
                return abs(positions[a.graph_id] - positions[b.graph_id])

        index = NBIndex.build(
            database, LineDistance(), num_vantage_points=2, branching=2,
            seed=0,
        )
        return database, index

    def test_initial_bounds_are_child_ceilings(self):
        database, index = self._toy_index()
        q = WeightedScoreThreshold([1.0], threshold=0.0)  # all relevant
        session = index.session(q)
        ladder_index = index.ladder.index_for(index.ladder[0])
        column = session.pi_hat_column(ladder_index)
        bounds = session._initial_bounds(column)
        for node in index.tree.nodes:
            if node.children:
                child_max = max(
                    bounds[c.node_id] for c in node.children
                )
                assert bounds[node.node_id] == child_max

    def test_neighborhood_counts_match_line_geometry(self):
        database, index = self._toy_index()
        q = WeightedScoreThreshold([1.0], threshold=0.0)
        result = index.query(q, theta=1.5, k=2)
        # θ=1.5 on the line: {0,1,2} form one ball around 1; {3,4} another.
        assert result.pi == pytest.approx(1.0)
        assert sorted(result.gains, reverse=True) == [3, 2]


class TestTheorem1Scaling:
    """Reduction instances of growing size stay solvable and consistent."""

    @pytest.mark.parametrize("num_subsets,universe", [(3, 4), (5, 8), (7, 10)])
    def test_random_instances_equivalence(self, num_subsets, universe):
        from repro.core import (
            SetCoverInstance,
            baseline_greedy,
            reduce_set_cover,
        )

        rng = np.random.default_rng(num_subsets * 100 + universe)
        subsets = []
        for _ in range(num_subsets - 1):
            size = int(rng.integers(1, universe))
            subsets.append(frozenset(
                int(x) for x in rng.choice(universe, size=size, replace=False)
            ))
        # Guarantee joint coverage with a final catch-all subset.
        covered = frozenset().union(*subsets) if subsets else frozenset()
        subsets.append(frozenset(range(universe)) - covered or frozenset({0}))
        instance = SetCoverInstance(universe, tuple(subsets))
        reduced = reduce_set_cover(instance)

        result = baseline_greedy(
            reduced.database, reduced.distance, reduced.query_fn,
            reduced.theta, num_subsets,
        )
        chosen = reduced.subsets_of_answer(result.answer)
        # Greedy picks only subset gadgets, and with k = |S| it must cover.
        assert instance.is_cover(chosen)
        assert len(result.covered) == reduced.target_coverage(len(chosen))

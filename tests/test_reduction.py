"""The Set-Cover reduction (Theorem 1): executable hardness construction."""


import pytest

from repro.core import (
    SetCoverInstance,
    all_theta_neighborhoods,
    baseline_greedy,
    optimal_answer,
    reduce_set_cover,
)
from repro.ged import check_metric_axioms
from repro.index import NBIndex


def _instance_with_cover():
    # U = {0..4}; {0,1}, {2,3}, {4}, {1,2} — cover of size 3 exists
    # ({0,1}, {2,3}, {4}); no cover of size 2.
    return SetCoverInstance(
        universe_size=5,
        subsets=(
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4}),
            frozenset({1, 2}),
        ),
    )


class TestSetCoverInstance:
    def test_is_cover(self):
        instance = _instance_with_cover()
        assert instance.is_cover([0, 1, 2])
        assert not instance.is_cover([0, 1])

    def test_rejects_non_covering_family(self):
        with pytest.raises(ValueError, match="jointly cover"):
            SetCoverInstance(universe_size=3, subsets=(frozenset({0}),))

    def test_rejects_out_of_universe(self):
        with pytest.raises(ValueError, match="outside universe"):
            SetCoverInstance(universe_size=2, subsets=(frozenset({0, 5}),))


class TestLookupDistanceMetric:
    def test_three_valued_metric(self):
        instance = _instance_with_cover()
        reduced = reduce_set_cover(instance, theta=1.0)
        sample = list(reduced.database)[:8]
        assert check_metric_axioms(sample, reduced.distance) == []


class TestReductionStructure:
    def test_group_sizes(self):
        instance = _instance_with_cover()
        reduced = reduce_set_cover(instance)
        assert len(reduced.d1_ids) == 4
        assert len(reduced.d2_ids) == 5
        # x = 1 + max element frequency = 1 + 2 (elements 1 and 2 appear twice)
        assert reduced.x == 3
        assert len(reduced.d3_ids) == reduced.x * 4

    def test_neighborhood_encoding(self):
        instance = _instance_with_cover()
        reduced = reduce_set_cover(instance, theta=1.0)
        db, dist = reduced.database, reduced.distance
        # u_j within θ of s_i iff e_j ∈ S_i.
        for i, subset in enumerate(instance.subsets):
            for j in range(instance.universe_size):
                d = dist(db[reduced.d1_ids[i]], db[reduced.d2_ids[j]])
                if j in subset:
                    assert d <= 1.0
                else:
                    assert d > 1.0

    def test_d1_has_highest_representative_power(self):
        instance = _instance_with_cover()
        reduced = reduce_set_cover(instance)
        relevant = list(range(len(reduced.database)))
        neighborhoods = all_theta_neighborhoods(
            reduced.database, reduced.distance, relevant, reduced.theta
        )
        best_d1 = min(len(neighborhoods[g]) for g in reduced.d1_ids)
        worst_other = max(
            len(neighborhoods[g])
            for g in list(reduced.d2_ids) + list(reduced.d3_ids)
        )
        assert best_d1 > worst_other


class TestEquivalence:
    def test_cover_exists_iff_target_coverage_attainable(self):
        instance = _instance_with_cover()
        reduced = reduce_set_cover(instance)
        relevant = list(range(len(reduced.database)))
        neighborhoods = all_theta_neighborhoods(
            reduced.database, reduced.distance, relevant, reduced.theta
        )
        # k = 3: a cover exists, so the optimum hits the target.
        _, covered3 = optimal_answer(
            neighborhoods, relevant, 3, max_candidates=30
        )
        assert covered3 == reduced.target_coverage(3)
        # k = 2: no cover of size 2, so the optimum falls short.
        _, covered2 = optimal_answer(
            neighborhoods, relevant, 2, max_candidates=30
        )
        assert covered2 < reduced.target_coverage(2)

    def test_greedy_recovers_a_cover_when_one_exists(self):
        instance = _instance_with_cover()
        reduced = reduce_set_cover(instance)
        result = baseline_greedy(
            reduced.database, reduced.distance, reduced.query_fn,
            reduced.theta, 3,
        )
        chosen_subsets = reduced.subsets_of_answer(result.answer)
        # Greedy on this instance picks only subset gadgets...
        assert len(chosen_subsets) == 3
        # ...and set-cover greedy achieves a cover here (ln(n) guarantee is
        # loose, but this instance is easy).
        assert instance.is_cover(chosen_subsets)
        assert len(result.covered) == reduced.target_coverage(3)

    def test_reduction_runs_through_nbindex(self):
        """The NB-Index only needs a metric; the reduction's lookup metric
        qualifies, so the full indexed engine solves gadget instances."""
        instance = _instance_with_cover()
        reduced = reduce_set_cover(instance)
        index = NBIndex.build(
            reduced.database, reduced.distance,
            num_vantage_points=4, branching=3, seed=0,
        )
        result = index.query(reduced.query_fn, reduced.theta, 3)
        assert len(result.covered) == reduced.target_coverage(3)

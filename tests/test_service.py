"""Tests for the query service layer (repro.service).

Covers the wire protocol, admission control and shedding, the circuit
breaker state machine (with an injectable clock), the read-write latch,
hot index reload with corrupt-candidate rollback, per-query fault
isolation, graceful drain, the line transport, and the chaos acceptance
scenario from the roadmap: one worker crash + one slow query + one
corrupt reload artifact, with the service shedding typed ``Overloaded``,
never crashing, draining within grace, and serving results bit-identical
to direct ``NBIndex.query`` for admitted non-degraded requests.
"""

from __future__ import annotations

import json
import io
import threading
import time

import pytest

from repro.engine import DistanceEngine
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex, save_index
from repro.resilience import RetryPolicy, faults
from repro.resilience.faults import FaultPlan
from repro.service import (
    AdmissionController,
    BreakerConfig,
    CircuitBreaker,
    CrashJournal,
    IndexManager,
    InvalidRequest,
    Overloaded,
    QueryRequest,
    QueryService,
    ReadWriteLatch,
    ReloadFailed,
    ServiceClosed,
    ServiceConfig,
    parse_request,
    serve_lines,
)
from repro.service.breaker import BOUND_ONLY, NORMAL, PROBE
from repro.service.server import serve_tcp
from tests.conftest import random_database

BUILD = dict(num_vantage_points=5, branching=4, seed=7)


def _build_index(db, workers=None, engine=None):
    return NBIndex.build(db, StarDistance(), workers=workers, engine=engine, **BUILD)


@pytest.fixture(scope="module")
def service_db():
    return random_database(seed=21, size=30)


@pytest.fixture(scope="module")
def service_index(service_db):
    return _build_index(service_db)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_minimal_query(self):
        req = parse_request('{"id": 1, "theta": 8.0, "k": 5}')
        assert req.op == "query" and req.theta == 8.0 and req.k == 5
        assert req.quantile == 0.75 and req.dims is None

    def test_full_query(self):
        req = parse_request(json.dumps({
            "id": "a", "op": "query", "theta": 4, "k": 2, "quantile": 0.5,
            "dims": [0, 1], "seed": 3, "timeout_ms": 250, "unknown": True,
        }))
        assert req.dims == (0, 1) and req.timeout_ms == 250
        assert req.extra == {"unknown": True}

    @pytest.mark.parametrize("line", [
        "not json",
        "[1, 2]",
        '{"op": "explode"}',
        '{"op": "query"}',                        # missing theta/k
        '{"op": "query", "theta": -1, "k": 2}',   # bad theta
        '{"op": "query", "theta": 2, "k": 0}',    # bad k
        '{"op": "query", "theta": 2, "k": 2, "quantile": 1.5}',
        '{"op": "query", "theta": 2, "k": 2, "timeout_ms": -5}',
        '{"op": "query", "theta": 2, "k": 2, "dims": ["x"]}',
        '{"op": "query", "theta": true, "k": 2}',  # bool is not a number
        '{"op": "reload", "path": 7}',
    ])
    def test_invalid_requests(self, line):
        with pytest.raises(InvalidRequest):
            parse_request(line)

    def test_oversized_request_is_rejected_before_admission(self):
        line = json.dumps({"op": "query", "theta": 2, "k": 2,
                           "pad": "x" * 4096})
        with pytest.raises(InvalidRequest, match="exceeds"):
            parse_request(line, max_bytes=1024)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_sheds_with_typed_overloaded_when_full(self):
        ctl = AdmissionController(max_queue=2, max_concurrency=1)
        ctl.admit("a")
        ctl.admit("b")
        with pytest.raises(Overloaded) as excinfo:
            ctl.admit("c")
        assert excinfo.value.retry_after_s > 0
        assert excinfo.value.to_wire()["code"] == "overloaded"
        assert ctl.stats()["shed"] == 1
        # Shedding did not grow the queue.
        assert ctl.depth == 2

    def test_closed_rejects_new_but_keeps_queued(self):
        ctl = AdmissionController(max_queue=4)
        ticket = ctl.admit("a")
        ctl.close()
        with pytest.raises(ServiceClosed):
            ctl.admit("b")
        assert ctl.next() is ticket      # queued work still drains
        assert ctl.next() is None        # then workers are told to exit

    def test_deadline_budget_starts_at_admission(self):
        ctl = AdmissionController(max_queue=2, default_timeout_ms=10_000)
        ticket = ctl.admit("a")
        assert ticket.deadline is not None
        assert 0 < ticket.deadline.remaining() <= 10.0
        override = ctl.admit("b", timeout_ms=50)
        assert override.deadline.remaining() <= 0.05

    def test_cancel_pending_resolves_each_ticket(self):
        ctl = AdmissionController(max_queue=4)
        tickets = [ctl.admit(i) for i in range(3)]
        count = ctl.cancel_pending(lambda t: {"cancelled": t.request})
        assert count == 3
        assert [t.wait(1.0) for t in tickets] == [
            {"cancelled": 0}, {"cancelled": 1}, {"cancelled": 2}]

    def test_retry_after_tracks_service_time(self):
        ctl = AdmissionController(max_queue=1, max_concurrency=1)
        for _ in range(20):
            ctl.note_completion(1.0)   # slow service -> bigger hint
        ctl.admit("a")
        with pytest.raises(Overloaded) as excinfo:
            ctl.admit("b")
        assert excinfo.value.retry_after_s > 0.5


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def _breaker(self, **overrides):
        clock = _Clock()
        config = BreakerConfig(**{
            "failure_threshold": 3, "degradation_threshold": 2,
            "window": 4, "cooldown_s": 5.0, **overrides})
        return CircuitBreaker(config, clock=clock), clock

    def test_trips_on_consecutive_failures(self):
        breaker, _ = self._breaker()
        assert breaker.admit() == NORMAL
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.admit() == BOUND_ONLY

    def test_success_resets_consecutive_failures(self):
        # Wide window so only the consecutive-failure rule is in play.
        breaker, _ = self._breaker(window=20)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_trips_on_consecutive_degradations(self):
        breaker, _ = self._breaker()
        breaker.record_success(degraded=True)
        assert breaker.state == "closed"
        breaker.record_success(degraded=True)
        assert breaker.state == "open"

    def test_half_open_single_probe_then_close(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.admit() == BOUND_ONLY
        clock.now += 5.0
        assert breaker.admit() == PROBE      # exactly one probe
        assert breaker.admit() == BOUND_ONLY  # everyone else stays safe
        breaker.record_success(probe=True)
        assert breaker.state == "closed"
        assert breaker.admit() == NORMAL

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 5.0
        assert breaker.admit() == PROBE
        breaker.record_failure(probe=True)
        assert breaker.state == "open"
        clock.now += 4.9
        assert breaker.admit() == BOUND_ONLY
        clock.now += 0.2
        assert breaker.admit() == PROBE

    def test_degraded_probe_reopens(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 5.0
        assert breaker.admit() == PROBE
        breaker.record_success(probe=True, degraded=True)
        assert breaker.state == "open"

    def test_window_error_rate_trips(self):
        breaker, _ = self._breaker(failure_threshold=10,
                                   error_rate_threshold=0.5, window=4)
        for outcome in (True, False, True, False):
            if outcome:
                breaker.record_success()
            else:
                breaker.record_failure()
        assert breaker.state == "open"


# ---------------------------------------------------------------------------
# Read-write latch
# ---------------------------------------------------------------------------
class TestReadWriteLatch:
    def test_concurrent_readers(self):
        latch = ReadWriteLatch()
        inside = threading.Barrier(3, timeout=5.0)

        def reader():
            with latch.read():
                inside.wait()   # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        latch = ReadWriteLatch()
        order = []
        in_write = threading.Event()

        def writer():
            with latch.write():
                in_write.set()
                time.sleep(0.05)
                order.append("write")

        def reader():
            in_write.wait(5.0)
            with latch.read():
                order.append("read")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(5.0)
        tr.join(5.0)
        assert order == ["write", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        latch = ReadWriteLatch()
        reader_in = threading.Event()
        release_reader = threading.Event()
        results = []

        def long_reader():
            with latch.read():
                reader_in.set()
                release_reader.wait(5.0)

        def writer():
            with latch.write():
                results.append("write")

        def late_reader():
            with latch.read():
                results.append("read")

        t1 = threading.Thread(target=long_reader)
        t1.start()
        reader_in.wait(5.0)
        t2 = threading.Thread(target=writer)
        t2.start()
        time.sleep(0.05)  # let the writer reach the waiting state
        t3 = threading.Thread(target=late_reader)
        t3.start()
        time.sleep(0.05)
        assert results == []          # late reader queued behind the writer
        release_reader.set()
        for t in (t1, t2, t3):
            t.join(5.0)
        assert results == ["write", "read"]


# ---------------------------------------------------------------------------
# Hot reload
# ---------------------------------------------------------------------------
class TestHotReload:
    def test_reload_swaps_and_bumps_generation(self, service_db, tmp_path):
        index = _build_index(service_db)
        replacement = NBIndex.build(
            service_db, StarDistance(), num_vantage_points=5, branching=4,
            seed=13,
        )
        art = tmp_path / "idx.npz"
        save_index(replacement, art)
        manager = IndexManager(index)
        assert manager.generation == 0
        generation = manager.reload(art)
        assert generation == 1
        assert manager.index is not index

    def test_corrupt_candidate_rolls_back(self, service_db, tmp_path):
        index = _build_index(service_db)
        art = tmp_path / "idx.npz"
        save_index(index, art)
        art.write_bytes(art.read_bytes()[:128])  # torn artifact
        manager = IndexManager(index)
        with pytest.raises(ReloadFailed):
            manager.reload(art)
        assert manager.index is index            # previous index serving
        assert manager.generation == 0
        assert manager.stats()["reload_failures"] == 1

    def test_maybe_reload_consumes_corrupt_fingerprint(
        self, service_db, tmp_path
    ):
        index = _build_index(service_db)
        art = tmp_path / "watched.npz"
        save_index(index, art)
        manager = IndexManager(index, watch_path=art)
        assert manager.maybe_reload() is False   # unchanged artifact
        art.write_bytes(b"garbage")
        assert manager.maybe_reload() is False   # corrupt -> rollback
        assert manager.reload_failures == 1
        assert manager.maybe_reload() is False   # reported once, not re-tried
        assert manager.reload_failures == 1

    def test_maybe_reload_picks_up_new_artifact(self, service_db, tmp_path):
        index = _build_index(service_db)
        art = tmp_path / "watched.npz"
        save_index(index, art)
        manager = IndexManager(index, watch_path=art)
        replacement = NBIndex.build(
            service_db, StarDistance(), num_vantage_points=5, branching=4,
            seed=13,
        )
        save_index(replacement, art)
        assert manager.maybe_reload() is True
        assert manager.generation == 1

    def test_inflight_query_unaffected_by_swap(self, service_db, tmp_path):
        index = _build_index(service_db)
        replacement = NBIndex.build(
            service_db, StarDistance(), num_vantage_points=5, branching=4,
            seed=13,
        )
        art = tmp_path / "idx.npz"
        save_index(replacement, art)
        manager = IndexManager(index)
        in_read = threading.Event()
        release = threading.Event()
        seen = []

        def reader():
            with manager.acquire() as current:
                in_read.set()
                release.wait(5.0)
                seen.append(current)

        t = threading.Thread(target=reader)
        t.start()
        in_read.wait(5.0)
        swapper = threading.Thread(target=manager.reload, args=(art,))
        swapper.start()
        time.sleep(0.05)
        assert manager.generation == 0   # swap waits for the reader
        release.set()
        t.join(5.0)
        swapper.join(5.0)
        assert seen == [index]           # reader finished on the old index
        assert manager.generation == 1


# ---------------------------------------------------------------------------
# Crash journal / fault isolation
# ---------------------------------------------------------------------------
class TestFaultIsolation:
    def test_poisoned_query_is_journaled_and_worker_survives(
        self, service_index, tmp_path, monkeypatch
    ):
        crash_log = tmp_path / "crashes.jsonl"
        config = ServiceConfig(max_concurrency=1, crash_log=str(crash_log))
        with QueryService(service_index, config=config) as svc:
            # Poison exactly one request through the relevance function.
            import repro.service.server as server_module

            real = server_module.quartile_relevance
            calls = {"n": 0}

            def poisoned(database, dims=None, quantile=0.75):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("poisoned relevance")
                return real(database, dims=dims, quantile=quantile)

            monkeypatch.setattr(server_module, "quartile_relevance", poisoned)
            bad = svc.call(QueryRequest(id=1, theta=8.0, k=2, seed=41))
            assert bad["ok"] is False
            assert bad["error"]["code"] == "query_failed"
            assert bad["error"]["exception_type"] == "RuntimeError"
            # The same worker answers the next query.
            good = svc.call(QueryRequest(id=2, theta=8.0, k=2))
            assert good["ok"] is True
            entry = svc.journal.last()
            assert entry["exception_type"] == "RuntimeError"
            assert entry["request"]["seed"] == 41
            assert any("poisoned relevance" in ln for ln in entry["traceback"])
        lines = crash_log.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["exception_type"] == "RuntimeError"

    def test_journal_without_path_keeps_tail(self):
        journal = CrashJournal()
        journal.record(QueryRequest(id=1, theta=2.0, k=1), ValueError("boom"))
        assert journal.stats()["crashes"] == 1
        assert journal.last()["message"] == "boom"


# ---------------------------------------------------------------------------
# Service end-to-end
# ---------------------------------------------------------------------------
class TestQueryService:
    def test_results_bit_identical_to_direct_query(
        self, service_db, service_index
    ):
        q = quartile_relevance(service_db)
        direct = service_index.query(q, 8.0, 3)
        with QueryService(service_index) as svc:
            response = svc.call(QueryRequest(id=1, theta=8.0, k=3))
        result = response["result"]
        assert result["answer"] == [int(g) for g in direct.answer]
        assert result["gains"] == [int(g) for g in direct.gains]
        assert result["pi"] == pytest.approx(direct.pi)
        assert result["degraded"] is False

    def test_invalid_dims_rejected(self, service_index):
        with QueryService(service_index) as svc:
            response = svc.call(
                QueryRequest(id=1, theta=8.0, k=2, dims=(99,)))
        assert response["error"]["code"] == "invalid_request"

    def test_expired_deadline_cancelled_not_started(self, service_index):
        with QueryService(service_index) as svc:
            response = svc.call(
                QueryRequest(id=1, theta=8.0, k=2, timeout_ms=0))
        assert response["error"]["code"] == "deadline_expired"

    def test_breaker_open_serves_bound_only(self, service_index):
        with QueryService(service_index) as svc:
            svc.breaker._trip_locked()  # force the breaker open
            response = svc.call(QueryRequest(id=1, theta=8.0, k=2))
        assert response["ok"] is True
        assert response["result"]["bound_only"] is True

    def test_drain_cancels_queued_with_typed_overloaded(self, service_index):
        config = ServiceConfig(max_concurrency=1, max_queue=8)
        svc = QueryService(service_index, config=config).start()
        with faults.injected(FaultPlan(slow_sites={"service.query": 0.4},
                                       slow_limit=1)):
            tickets = [
                svc.submit(QueryRequest(id=i, theta=8.0, k=2))
                for i in range(6)
            ]
            report = svc.drain(grace_s=0.05)
        assert report["cancelled"] >= 1
        responses = [t.wait(5.0) for t in tickets]
        assert all(r is not None for r in responses)
        cancelled = [r for r in responses if not r["ok"]]
        assert cancelled
        assert all(r["error"]["code"] == "overloaded" for r in cancelled)
        # Drain is idempotent and the second call reports clean.
        assert svc.drain()["cancelled"] == 0

    def test_stats_shape(self, service_index):
        with QueryService(service_index) as svc:
            svc.call(QueryRequest(id=1, theta=8.0, k=2))
            stats = svc.stats()
        assert stats["admission"]["admitted"] == 1
        assert stats["breaker"]["state"] == "closed"
        assert stats["index"]["generation"] == 0


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------
class TestTransports:
    def test_serve_lines_orders_responses_and_drains(self, service_index):
        svc = QueryService(service_index).start()
        lines = [
            json.dumps({"id": 1, "theta": 8.0, "k": 2}),
            "garbage",
            json.dumps({"id": 3, "op": "ping"}),
            json.dumps({"id": 4, "theta": -1, "k": 2}),
        ]
        out = io.StringIO()
        report = serve_lines(svc, iter(f"{ln}\n" for ln in lines), out)
        assert report["served"] == 4 and report["clean"]
        responses = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert [r["id"] for r in responses] == [1, None, 3, 4]
        assert responses[0]["ok"] and responses[2]["ok"]
        assert responses[1]["error"]["code"] == "invalid_request"
        assert responses[3]["error"]["code"] == "invalid_request"

    def test_tcp_round_trip(self, service_index):
        import socket

        svc = QueryService(service_index).start()
        server = serve_tcp(svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection(server.server_address, timeout=5) as sock:
                stream = sock.makefile("rw")
                stream.write(json.dumps({"id": 1, "theta": 8.0, "k": 2}) + "\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] is True and response["id"] == 1
        finally:
            server.shutdown()
            server.server_close()
            assert svc.drain()["clean"]


# ---------------------------------------------------------------------------
# Chaos acceptance scenario
# ---------------------------------------------------------------------------
class TestChaosAcceptance:
    def test_crash_slow_and_corrupt_reload_never_kill_the_service(
        self, tmp_path
    ):
        """One worker crash + one slow query + one corrupt reload artifact:
        the service sheds with typed Overloaded, keeps answering, rolls the
        corrupt reload back, drains within grace, and admitted
        non-degraded answers are bit-identical to direct NBIndex.query."""
        db = random_database(seed=23, size=24)
        engine = DistanceEngine(
            StarDistance(), workers=2, respect_cpu_count=False,
            parallel_threshold=1, chunk_size=4,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01,
                                     max_delay=0.02, jitter=0.0),
            graphs=db.graphs,
        )
        index = _build_index(db, engine=engine)
        # The build already forked the pool; respawn it later so workers
        # inherit the fault plan installed below.
        engine.invalidate_pool()
        art = tmp_path / "watched.npz"
        save_index(index, art)

        token = tmp_path / "crash-token"
        token.write_text("armed")
        plan = FaultPlan(
            crash_token=str(token),
            slow_sites={"service.query": 0.5},
            slow_limit=1,
        )

        config = ServiceConfig(
            max_concurrency=1, max_queue=2, drain_grace_s=10.0,
            watch=str(art), reload_poll_s=10.0,  # reloads driven manually
        )
        svc = QueryService(index, config=config).start()
        try:
            with faults.injected(plan):
                # The first query eats the slow injection and (through the
                # engine pool) the one-shot worker crash; followers pile up
                # behind it until the bounded queue sheds.
                tickets, sheds = [], []
                for i in range(8):
                    try:
                        tickets.append(
                            svc.submit(QueryRequest(id=i, theta=8.0, k=3)))
                    except Overloaded as error:
                        sheds.append(error)
                assert sheds, "bounded queue never shed under chaos load"
                assert all(e.to_wire()["code"] == "overloaded" for e in sheds)
                assert all(e.retry_after_s > 0 for e in sheds)

                # Corrupt reload artifact drops mid-flight: rollback, keep
                # serving the old index.
                art.write_bytes(art.read_bytes()[:200])
                assert svc.manager.maybe_reload() is False
                assert svc.manager.reload_failures == 1
                assert svc.manager.generation == 0

                responses = [t.wait(30.0) for t in tickets]
            assert all(r is not None for r in responses), "a ticket hung"
            assert all(r["ok"] for r in responses), responses

            # Bit-identical to the direct path for non-degraded answers.
            direct = index.query(quartile_relevance(db), 8.0, 3)
            for response in responses:
                result = response["result"]
                if result["degraded"] or result["bound_only"]:
                    continue
                assert result["answer"] == [int(g) for g in direct.answer]
                assert result["gains"] == [int(g) for g in direct.gains]

            # The crash token was consumed: exactly one worker died and the
            # engine recovered (respawn or serial fallback) without the
            # service noticing.
            assert not token.exists()
        finally:
            report = svc.drain()
            engine.invalidate_pool()
        assert report["clean"], report

"""Beam-search GED: upper-bound validity and width behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ged import BeamGED, BipartiteGED, ExactGED
from repro.graphs import LabeledGraph, cycle_graph, path_graph
from tests.conftest import random_connected_graph

exact = ExactGED()

_LABELS = ("C", "N", "O")


@st.composite
def small_graph(draw, max_nodes=5):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = [draw(st.sampled_from(_LABELS)) for _ in range(n)]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return LabeledGraph(labels, edges)


class TestUpperBound:
    @settings(max_examples=25, deadline=None)
    @given(small_graph(), small_graph(), st.integers(min_value=1, max_value=6))
    def test_always_upper_bounds_exact(self, a, b, width):
        assert BeamGED(beam_width=width)(a, b) >= exact(a, b) - 1e-9

    def test_zero_for_identical(self):
        g = cycle_graph(["C", "N", "O"])
        assert BeamGED(beam_width=2)(g, g) == 0.0

    def test_empty_graphs(self):
        a = LabeledGraph([])
        b = path_graph(["C", "N"])
        assert BeamGED()(a, b) == 3.0
        assert BeamGED()(b, a) == 3.0


class TestWidthBehaviour:
    @pytest.mark.parametrize("seed", range(5))
    def test_wide_beam_reaches_exact_on_small_graphs(self, seed):
        rng = np.random.default_rng(seed)
        a = random_connected_graph(rng, int(rng.integers(2, 5)))
        b = random_connected_graph(rng, int(rng.integers(2, 5)))
        wide = BeamGED(beam_width=4096)
        assert wide(a, b) == pytest.approx(exact(a, b))

    def test_wider_beams_do_not_hurt_on_average(self):
        rng = np.random.default_rng(7)
        narrow = BeamGED(beam_width=1)
        wide = BeamGED(beam_width=16)
        total_narrow = total_wide = 0.0
        for _ in range(12):
            a = random_connected_graph(rng, int(rng.integers(3, 7)))
            b = random_connected_graph(rng, int(rng.integers(3, 7)))
            total_narrow += narrow(a, b)
            total_wide += wide(a, b)
        assert total_wide <= total_narrow + 1e-9

    def test_often_tighter_than_bipartite(self):
        """Beam(16) should usually match or beat the one-shot bipartite
        approximation (both are upper bounds on exact)."""
        rng = np.random.default_rng(8)
        beam = BeamGED(beam_width=16)
        bipartite = BipartiteGED()
        wins = ties = losses = 0
        for _ in range(15):
            a = random_connected_graph(rng, int(rng.integers(3, 7)))
            b = random_connected_graph(rng, int(rng.integers(3, 7)))
            bv, pv = beam(a, b), bipartite(a, b)
            if bv < pv - 1e-9:
                wins += 1
            elif bv > pv + 1e-9:
                losses += 1
            else:
                ties += 1
        assert wins + ties >= losses

    def test_width_validation(self):
        with pytest.raises(ValueError):
            BeamGED(beam_width=0)

"""Property tests: every cascade stage is a true lower bound.

Hypothesis drives random labeled graphs through each pure per-pair
stage bound (:data:`repro.cascade.stages.PAIR_BOUNDS`) and checks it
never exceeds exact GED — the soundness obligation that makes ε = 0
cascade pruning bit-identical.  The structural stages carry the same
obligation against the (unnormalized) star metric, the vantage stage's
Lipschitz sandwich is checked against random vantage sets, and the
vectorized :class:`~repro.cascade.features.StageFeatures` forms must
agree exactly with the pure per-pair reference they accelerate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascade.features import StageFeatures
from repro.cascade.stages import (
    PAIR_BOUNDS,
    assignment_lower_bound,
    degree_lower_bound,
    label_size_lower_bound,
    star_lower_bound,
)
from repro.ged import ExactGED, StarDistance
from repro.graphs import LabeledGraph

exact = ExactGED()
star = StarDistance()

_LABELS = ("C", "N", "O")
_TOL = 1e-9


@st.composite
def small_graph(draw, max_nodes=5):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = [draw(st.sampled_from(_LABELS)) for _ in range(n)]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return LabeledGraph(labels, edges)


class TestLowerBoundsExactGED:
    """``stage_lb(g, h) <= GED(g, h)`` for every shipped pure bound."""

    @settings(max_examples=40, deadline=None)
    @given(small_graph(), small_graph(), st.sampled_from(sorted(PAIR_BOUNDS)))
    def test_every_stage_lower_bounds_exact(self, g, h, stage):
        assert PAIR_BOUNDS[stage](g, h) <= exact(g, h) + _TOL

    @settings(max_examples=40, deadline=None)
    @given(small_graph(), small_graph())
    def test_degree_term_lower_bounds_exact(self, g, h):
        assert degree_lower_bound(g, h) <= exact(g, h) + _TOL

    @settings(max_examples=25, deadline=None)
    @given(small_graph())
    def test_zero_on_identical(self, g):
        for bound in PAIR_BOUNDS.values():
            assert bound(g, g) == pytest.approx(0.0, abs=_TOL)


class TestLowerBoundsStarMetric:
    """The structural stages also lower-bound the engine's default
    (unnormalized) star metric — the gate for running them under a
    ``StarDistance`` engine."""

    @settings(max_examples=40, deadline=None)
    @given(small_graph(), small_graph())
    def test_label_size_lower_bounds_star(self, g, h):
        assert label_size_lower_bound(g, h) <= star(g, h) + _TOL

    @settings(max_examples=40, deadline=None)
    @given(small_graph(), small_graph())
    def test_assignment_lower_bounds_star(self, g, h):
        assert assignment_lower_bound(g, h) <= star(g, h) + _TOL

    @settings(max_examples=40, deadline=None)
    @given(small_graph(), small_graph())
    def test_star_stage_lower_bounds_star_trivially(self, g, h):
        # Circular (skipped by the engine gate) but still true: the
        # scaled-down assignment value never exceeds the star distance.
        assert star_lower_bound(g, h) <= star(g, h) + _TOL


class TestVantageSandwich:
    """Theorem 4: ``|d(v,g) − d(v,h)| ≤ d(g,h) ≤ d(v,g) + d(v,h)``."""

    @settings(max_examples=30, deadline=None)
    @given(small_graph(), small_graph(), small_graph())
    def test_lipschitz_sandwich_star(self, v, g, h):
        d = star(g, h)
        assert abs(star(v, g) - star(v, h)) <= d + _TOL
        assert d <= star(v, g) + star(v, h) + _TOL

    @settings(max_examples=15, deadline=None)
    @given(small_graph(max_nodes=4), small_graph(max_nodes=4),
           small_graph(max_nodes=4))
    def test_lipschitz_sandwich_exact(self, v, g, h):
        d = exact(g, h)
        assert abs(exact(v, g) - exact(v, h)) <= d + _TOL
        assert d <= exact(v, g) + exact(v, h) + _TOL


class TestVectorizedAgreesWithReference:
    """The batch :class:`StageFeatures` forms equal the pure bounds."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(small_graph(), min_size=1, max_size=6), small_graph())
    def test_batch_matches_pairwise(self, graphs, source):
        features = StageFeatures()
        features.sync(graphs)
        rows = np.arange(len(graphs))
        label = features.label_size_lb(source, rows)
        assign = features.assignment_lb(source, rows)
        for i, target in enumerate(graphs):
            assert label[i] == pytest.approx(
                label_size_lower_bound(source, target), abs=_TOL
            )
            assert assign[i] == pytest.approx(
                assignment_lower_bound(source, target), abs=_TOL
            )

    @settings(max_examples=15, deadline=None)
    @given(st.lists(small_graph(max_nodes=3), min_size=1, max_size=4),
           st.lists(small_graph(max_nodes=7), min_size=1, max_size=3),
           small_graph(max_nodes=7))
    def test_incremental_sync_matches_pairwise(self, first, second, source):
        """Rows appended by a later ``sync`` (wider degrees, new label
        columns) still reproduce the pure bounds — the live-insert path."""
        features = StageFeatures()
        features.sync(first)
        graphs = first + second
        features.sync(graphs)
        rows = np.arange(len(graphs))
        assign = features.assignment_lb(source, rows)
        for i, target in enumerate(graphs):
            assert assign[i] == pytest.approx(
                assignment_lower_bound(source, target), abs=_TOL
            )

"""DIV baseline: separation constraints, static scores, quality gap vs REP."""

import itertools

import pytest

from repro.baselines import div_topk
from repro.baselines.div import _exact_component, _greedy_component
from repro.core import baseline_greedy
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from tests.conftest import random_database


def _setup(seed=0, size=60):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    return db, dist, q


class TestSeparationConstraint:
    @pytest.mark.parametrize("factor", [1.0, 2.0])
    def test_pairwise_distances_exceed_separation(self, factor):
        db, dist, q = _setup(seed=1)
        theta = 4.0
        result = div_topk(db, dist, q, theta, 6, separation_factor=factor)
        for a, b in itertools.combinations(result.answer, 2):
            assert dist(db[a], db[b]) > factor * theta - 1e-9

    def test_answer_within_budget_and_relevant(self):
        db, dist, q = _setup(seed=2)
        result = div_topk(db, dist, q, 4.0, 5)
        assert len(result.answer) <= 5
        relevant = set(int(i) for i in db.relevant_indices(q))
        assert set(result.answer) <= relevant


class TestQualityOrdering:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rep_dominates_div(self, seed):
        """Table 4: REP ≥ DIV(θ) ≥ roughly DIV(2θ) in π.

        REP ≥ DIV(θ) is a theorem here (greedy argmax dominates any
        feasible same-size answer per-step is not a proof, but REP's greedy
        maximizes coverage while DIV maximizes an indirect surrogate; we
        assert the empirical ordering the paper reports).
        """
        db, dist, q = _setup(seed=seed)
        theta, k = 4.0, 5
        rep = baseline_greedy(db, dist, q, theta, k)
        div1 = div_topk(db, dist, q, theta, k, 1.0)
        div2 = div_topk(db, dist, q, theta, k, 2.0)
        assert rep.pi >= div1.pi - 1e-9
        assert rep.pi >= div2.pi - 1e-9

    def test_stricter_separation_not_better(self):
        db, dist, q = _setup(seed=3)
        div1 = div_topk(db, dist, q, 4.0, 5, 1.0)
        div2 = div_topk(db, dist, q, 4.0, 5, 2.0)
        # The 2θ constraint is strictly harder; its achievable score sum
        # (and in practice π) cannot beat θ's by much — assert the answer
        # is no larger.
        assert len(div2.answer) <= len(div1.answer)


class TestComponentSolvers:
    def test_exact_component_beats_or_ties_greedy(self):
        # Path conflict graph 0-1-2 with middle vertex worth the most:
        # greedy takes 1 alone (score 10); exact takes {0, 2} (score 12).
        scores = {0: 6, 1: 10, 2: 6}
        conflicts = {0: {1}, 1: {0, 2}, 2: {1}}
        exact = _exact_component([0, 1, 2], scores, conflicts, k=2)
        greedy = _greedy_component([0, 1, 2], scores, conflicts)
        assert sum(scores[g] for g in exact) >= sum(scores[g] for g in greedy)
        assert sorted(exact) == [0, 2]

    def test_greedy_component_respects_conflicts(self):
        scores = {0: 5, 1: 4, 2: 3}
        conflicts = {0: {1}, 1: {0}, 2: set()}
        picked = _greedy_component([0, 1, 2], scores, conflicts)
        assert 0 in picked and 1 not in picked and 2 in picked


class TestValidation:
    def test_rejects_bad_separation(self):
        db, dist, q = _setup(seed=4, size=20)
        with pytest.raises(ValueError):
            div_topk(db, dist, q, 4.0, 3, separation_factor=0.5)

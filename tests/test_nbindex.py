"""NB-Index end-to-end correctness: the engine must realize the exact
greedy trajectory (same per-iteration gains and final π as Algorithm 1)."""

import numpy as np
import pytest

import repro
from repro.core import all_theta_neighborhoods, baseline_greedy
from repro.ged import StarDistance
from repro.graphs import GraphDatabase, LabeledGraph, quartile_relevance
from repro.index import NBIndex, OffLadderThetaError, ThresholdLadder
from tests.conftest import random_connected_graph, random_database


def _build(seed=0, size=70, **kwargs):
    db = random_database(seed=seed, size=size)
    dist = StarDistance()
    q = quartile_relevance(db, quantile=0.3)
    params = dict(num_vantage_points=6, branching=4, seed=seed)
    params.update(kwargs)
    index = NBIndex.build(db, dist, **params)
    return db, dist, q, index


def assert_valid_greedy_trajectory(db, dist, q, theta, result):
    """Replay a trajectory and verify every selection had maximal marginal
    gain at its time — the greedy invariant behind the (1-1/e) guarantee.

    Two correct greedy engines may diverge after a tie (either argmax is
    legitimate), so this invariant — not gain-sequence equality — is the
    correctness criterion for cross-engine comparison.
    """
    relevant = [int(i) for i in db.relevant_indices(q)]
    neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
    covered: set[int] = set()
    remaining = set(relevant)
    for chosen, gain in zip(result.answer, result.gains):
        best = max(len(neighborhoods[g] - covered) for g in remaining)
        assert gain == len(neighborhoods[chosen] - covered)
        assert gain == best
        covered |= neighborhoods[chosen]
        remaining.discard(chosen)
    assert result.covered == frozenset(covered)


class TestAgainstBaselineGreedy:
    @pytest.mark.parametrize("seed,theta,k", [
        (0, 4.0, 5),
        (1, 6.0, 8),
        (2, 3.0, 3),
        (3, 8.0, 10),
        (4, 5.0, 6),
    ])
    def test_valid_greedy_trajectory_and_first_gain(self, seed, theta, k):
        db, dist, q, index = _build(seed=seed)
        expected = baseline_greedy(db, dist, q, theta, k)
        actual = index.query(q, theta, k)
        assert_valid_greedy_trajectory(db, dist, q, theta, actual)
        # The first gain is tie-break independent: it is max |N(g)|.
        assert actual.gains[0] == expected.gains[0]
        assert len(actual.answer) == len(expected.answer)

    def test_covered_set_is_true_union(self):
        db, dist, q, index = _build(seed=5)
        theta = 5.0
        result = index.query(q, theta, 4)
        relevant = [int(i) for i in db.relevant_indices(q)]
        neighborhoods = all_theta_neighborhoods(db, dist, relevant, theta)
        union: set[int] = set()
        for gid in result.answer:
            union |= neighborhoods[gid]
        assert result.covered == frozenset(union)


class TestTieBreakDeterminism:
    """Equal-gain ties must resolve to the smallest graph id everywhere, so
    the trajectory is a *canonical* greedy — identical to baseline_greedy
    answer-for-answer and independent of tree shape or partitioning."""

    @pytest.mark.parametrize("seed,theta,k", [
        (0, 4.0, 5),
        (3, 8.0, 10),
        (13, 5.0, 7),
        (21, 3.0, 12),
    ])
    def test_exact_match_with_baseline_greedy(self, seed, theta, k):
        db, dist, q, index = _build(seed=seed)
        expected = baseline_greedy(db, dist, q, theta, k)
        actual = index.query(q, theta, k)
        assert actual.answer == expected.answer
        assert actual.gains == expected.gains
        assert actual.covered == expected.covered

    def test_adversarial_all_ties_select_in_id_order(self):
        # A database of identical graphs: every distance is 0, so every
        # selection at every step is a pure tie.  The canonical rule must
        # pick ids in ascending order: 0 first (covers everything), then
        # the smallest remaining id each round.
        rng = np.random.default_rng(17)
        g = random_connected_graph(rng, 5)
        n = 12
        graphs = [LabeledGraph(g.node_labels, g.edges()) for _ in range(n)]
        db = GraphDatabase(graphs, np.zeros((n, 1)))
        dist = StarDistance()

        class AllRelevant:
            def mask(self, matrix):
                return np.ones(matrix.shape[0], dtype=bool)

        q = AllRelevant()
        index = NBIndex.build(
            db, dist, num_vantage_points=3, branching=3, seed=2,
            thresholds=ThresholdLadder([0.5]),
        )
        result = index.query(q, 0.5, 6)
        assert result.answer == list(range(6))
        assert result.gains == [n] + [0] * 5
        expected = baseline_greedy(db, dist, q, 0.5, 6)
        assert result.answer == expected.answer

    def test_duplicated_graphs_match_baseline(self):
        # Half the database duplicates the other half: lots of partial
        # ties without the degenerate all-zero geometry.
        base = random_database(seed=31, size=24)
        graphs = [LabeledGraph(g.node_labels, g.edges()) for g in base.graphs]
        graphs += [LabeledGraph(g.node_labels, g.edges()) for g in base.graphs]
        rng = np.random.default_rng(31)
        db = GraphDatabase(graphs, rng.random((len(graphs), 2)))
        dist = StarDistance()
        q = quartile_relevance(db, quantile=0.3)
        index = NBIndex.build(
            db, dist, num_vantage_points=5, branching=4, seed=3,
            thresholds=ThresholdLadder([4.0]),
        )
        expected = baseline_greedy(db, dist, q, 4.0, 8)
        actual = index.query(q, 4.0, 8)
        assert actual.answer == expected.answer
        assert actual.gains == expected.gains


class TestBudgetEdgeCases:
    def test_k_larger_than_relevant_set(self):
        db, dist, q, index = _build(seed=6, size=40)
        relevant = db.relevant_indices(q)
        result = index.query(q, 5.0, k=len(relevant) + 50)
        assert len(result.answer) <= len(relevant)

    def test_stop_on_zero_gain(self):
        # θ must be on the ladder now (off-ladder θ raises), so index the
        # huge threshold explicitly.
        db, dist, q, index = _build(seed=7, thresholds=ThresholdLadder([1e6]))
        full = index.query(q, 1e6, 10)  # everything within θ of anything
        stopped = index.query(q, 1e6, 10, stop_on_zero_gain=True)
        assert len(stopped.answer) == 1  # first pick covers all
        assert stopped.pi == pytest.approx(1.0)
        assert len(full.answer) == 10

    def test_no_relevant_graphs(self):
        db = random_database(seed=8, size=30)
        dist = StarDistance()
        index = NBIndex.build(db, dist, num_vantage_points=4, branching=3, seed=0)

        class NoneRelevant:
            def mask(self, matrix):
                return np.zeros(matrix.shape[0], dtype=bool)

        result = index.query(NoneRelevant(), 5.0, 3)
        assert result.answer == []
        assert result.pi == 0.0

    def test_parameter_validation(self):
        db, dist, q, index = _build(seed=9, size=30)
        with pytest.raises(ValueError):
            index.query(q, -1.0, 3)
        with pytest.raises(ValueError):
            index.query(q, 5.0, 0)


class TestLadderInteraction:
    def test_theta_beyond_ladder_raises_typed_error(self):
        db, dist, q, index = _build(
            seed=10, thresholds=ThresholdLadder([1.0, 2.0])
        )
        theta = 50.0  # way above the ladder
        with pytest.raises(OffLadderThetaError) as excinfo:
            index.query(q, theta, 4)
        err = excinfo.value
        assert isinstance(err, ValueError)  # still a ValueError for old callers
        assert err.theta == theta
        assert err.nearest_rungs == (1.0, 2.0)
        assert "set_ladder" in str(err)
        # Re-laddering the same index makes the θ answerable, and the
        # answer is a valid greedy trajectory.
        index.set_ladder(ThresholdLadder([1.0, 2.0, theta]))
        actual = index.query(q, theta, 4)
        assert_valid_greedy_trajectory(db, dist, q, theta, actual)

    def test_offladder_theta_counter_increments(self):
        _, _, q, index = _build(seed=10, thresholds=ThresholdLadder([1.0]))
        with repro.observe() as run:
            with pytest.raises(OffLadderThetaError):
                index.query(q, 9.0, 2)
        assert run.stats()["counters"]["index.offladder_theta"] == 1

    def test_tight_ladder_fewer_evaluations_than_trivial(self):
        db, dist, q, _ = _build(seed=11)
        theta = 4.0
        tight = NBIndex.build(
            db, dist, num_vantage_points=6, branching=4, seed=11,
            thresholds=ThresholdLadder([theta]),
        )
        loose = NBIndex.build(
            db, dist, num_vantage_points=6, branching=4, seed=11,
            thresholds=ThresholdLadder([1000.0]),
        )
        r_tight = tight.query(q, theta, 5)
        r_loose = loose.query(q, theta, 5)
        assert_valid_greedy_trajectory(db, dist, q, theta, r_tight)
        assert_valid_greedy_trajectory(db, dist, q, theta, r_loose)
        assert (
            r_tight.stats.leaves_evaluated <= r_loose.stats.leaves_evaluated
        )


class TestSessions:
    def test_session_reuse_matches_fresh_queries(self):
        db, dist, q, index = _build(seed=12)
        session = index.session(q)
        for theta in (3.0, 5.0, 4.0, 6.0):
            fresh = index.query(q, theta, 5)
            reused = session.query(theta, 5)
            assert_valid_greedy_trajectory(db, dist, q, theta, reused)
            assert reused.answer == fresh.answer, theta
            assert reused.gains == fresh.gains

    def test_pi_hat_columns_cached(self):
        db, dist, q, index = _build(seed=13)
        session = index.session(q)
        theta = float(index.ladder[2])
        session.query(theta, 3)
        cached = len(session._pi_hat_columns)
        session.query(theta, 3)
        assert len(session._pi_hat_columns) == cached

    def test_repeated_query_same_answer(self):
        db, dist, q, index = _build(seed=14)
        session = index.session(q)
        first = session.query(5.0, 5)
        second = session.query(5.0, 5)
        assert first.answer == second.answer
        assert first.gains == second.gains


class TestStatsAndMemory:
    def test_stats_populated(self):
        db, dist, q, index = _build(seed=15)
        result = index.query(q, 5.0, 4)
        assert result.stats.exact_neighborhoods >= len(result.answer)
        assert result.stats.nodes_popped > 0
        assert result.stats.total_seconds > 0.0

    def test_fewer_exact_neighborhoods_than_relevant(self):
        """The point of the index: most graphs never get their exact
        neighborhood computed."""
        db, dist, q, index = _build(seed=16, size=90)
        relevant = len(db.relevant_indices(q))
        result = index.query(q, 3.0, 5)
        assert result.stats.exact_neighborhoods < relevant

    def test_memory_bytes_positive_and_monotone(self):
        db_small, dist, _, index_small = _build(seed=17, size=40)
        _, _, _, index_large = _build(seed=17, size=90)
        assert 0 < index_small.stats()["memory_bytes"] < index_large.stats()["memory_bytes"]

    def test_build_records_time_and_calls(self):
        _, _, _, index = _build(seed=18, size=40)
        assert index.build_seconds > 0
        assert index.stats()["distance_calls"] > 0

    def test_repr(self):
        _, _, _, index = _build(seed=19, size=30)
        assert "NBIndex" in repr(index)

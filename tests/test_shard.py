"""Tests for the sharded NB-Index (repro.shard).

The load-bearing property is *bit-identity*: for any shard count and any
partitioner, the scatter-gather coordinator returns exactly the answer
(ids, gains, ordering, coverage) of the single-index engine — which is
itself exactly ``baseline_greedy``.  Everything else — partitioners,
manifest persistence, corruption detection, per-shard hot-reload reuse,
service integration, deadline degradation — is tested around that core.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib

import numpy as np
import pytest

import repro
from repro import obs
from repro.core import baseline_greedy
from repro.engine import DistanceEngine
from repro.ged import ExactGED, StarDistance
from repro.graphs import GraphDatabase, LabeledGraph, quartile_relevance
from repro.index import NBIndex, OffLadderThetaError, save_index
from repro.index.persistence import load_index
from repro.index.pivec import ThresholdLadder
from repro.resilience import Deadline
from repro.resilience.errors import (
    CorruptIndexError,
    DatabaseMismatchError,
    PersistenceError,
)
from repro.service import QueryRequest, QueryService, ServiceConfig
from repro.service.reload import IndexManager
from repro.shard import (
    ClusteringPartitioner,
    HashPartitioner,
    ManifestError,
    PartitionError,
    ShardedIndex,
    ShardManifest,
    build_shards,
    get_partitioner,
)
from tests.conftest import random_database, random_connected_graph

#: Shared build shape: small trees, explicit ladder so every test theta is
#: on-rung for both the single index and every shard bundle.
LADDER = ThresholdLadder([2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 40.0])
BUILD = dict(num_vantage_points=6, branching=4, thresholds=LADDER)
THETAS = (6.0, 12.0)


@pytest.fixture(scope="module")
def db():
    return random_database(seed=17, size=48)


@pytest.fixture(scope="module")
def single_index(db):
    return NBIndex.build(db, StarDistance(), seed=7, **BUILD)


@pytest.fixture(scope="module")
def bundle_dir(db, tmp_path_factory):
    """A canonical 3-shard hash bundle shared by the non-identity tests."""
    out = tmp_path_factory.mktemp("bundle")
    build_shards(
        db, StarDistance(), num_shards=3, out_dir=out, seed=7, **BUILD
    )
    return out


def _load(bundle_dir, db, **kwargs):
    return ShardedIndex.load(
        bundle_dir / "manifest.json", db, StarDistance(), **kwargs
    )


def _assert_same_result(got, want):
    assert got.answer == want.answer
    assert got.gains == want.gains
    assert got.covered == want.covered
    assert got.num_relevant == want.num_relevant
    assert got.pi == want.pi


# ---------------------------------------------------------------------------
# Partitioners
# ---------------------------------------------------------------------------
class TestPartition:
    def test_hash_is_deterministic_and_complete(self, db):
        a = HashPartitioner().assign(db, 4)
        b = HashPartitioner().assign(db, 4)
        assert np.array_equal(a.assignments, b.assignments)
        assert a.assignments.shape == (len(db),)
        assert set(np.unique(a.assignments)) <= set(range(4))
        assert all(size >= 1 for size in a.sizes())
        assert sum(a.sizes()) == len(db)

    def test_clustering_is_seed_deterministic(self, db):
        engine = DistanceEngine(StarDistance(), graphs=db.graphs)
        a = ClusteringPartitioner().assign(db, 4, seed=7, engine=engine)
        b = ClusteringPartitioner().assign(db, 4, seed=7, engine=engine)
        assert np.array_equal(a.assignments, b.assignments)
        assert all(size >= 1 for size in a.sizes())

    def test_clustering_requires_engine(self, db):
        with pytest.raises(ValueError, match="engine"):
            ClusteringPartitioner().assign(db, 2)

    def test_unknown_partitioner_is_typed(self):
        with pytest.raises(PartitionError, match="unknown partitioner"):
            get_partitioner("alphabetical")

    def test_empty_shards_are_repaired(self):
        # Five structurally identical graphs hash to one digest, so a raw
        # mod-S assignment leaves shards empty; the repair must fill them.
        g = random_connected_graph(np.random.default_rng(0), 5)
        graphs = [LabeledGraph(g.node_labels, g.edges()) for _ in range(5)]
        db = GraphDatabase(graphs, np.zeros((5, 1)))
        part = HashPartitioner().assign(db, 3)
        assert all(size >= 1 for size in part.sizes())

    def test_more_shards_than_graphs_raises(self, tmp_path):
        g = random_connected_graph(np.random.default_rng(0), 5)
        db = GraphDatabase([g], np.zeros((1, 1)))
        with pytest.raises(ValueError):
            build_shards(db, StarDistance(), num_shards=2, out_dir=tmp_path)


# ---------------------------------------------------------------------------
# Bit-identity: the tentpole property
# ---------------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("num_shards,partitioner", [
        (1, "hash"), (2, "hash"), (4, "hash"), (7, "hash"),
        (2, "clustering"), (4, "clustering"), (7, "clustering"),
    ])
    def test_matches_single_index(
        self, db, single_index, tmp_path, num_shards, partitioner
    ):
        sharded = ShardedIndex.build(
            db, StarDistance(), num_shards=num_shards, out_dir=tmp_path,
            partitioner=partitioner, seed=7, **BUILD,
        )
        q = quartile_relevance(db)
        for theta in THETAS:
            want = single_index.query(q, theta, 6)
            got = sharded.query(q, theta, 6)
            _assert_same_result(got, want)
        sharded.invalidate_pools()

    def test_matches_baseline_greedy(self, db, bundle_dir):
        sharded = _load(bundle_dir, db)
        q = quartile_relevance(db)
        for theta in THETAS:
            want = baseline_greedy(db, StarDistance(), q, theta, 6)
            got = sharded.query(q, theta, 6)
            assert got.answer == want.answer
            assert got.gains == want.gains
        sharded.invalidate_pools()

    def test_duplicated_graphs_tie_break_across_shards(self, tmp_path):
        # Every graph exists twice; gains tie constantly and the canonical
        # rule (smallest global id) must hold across shard boundaries.
        base = random_database(seed=29, size=20)
        graphs = [LabeledGraph(g.node_labels, g.edges()) for g in base.graphs]
        graphs += [LabeledGraph(g.node_labels, g.edges()) for g in base.graphs]
        rng = np.random.default_rng(29)
        db = GraphDatabase(graphs, rng.random((len(graphs), 2)))
        ladder = ThresholdLadder([4.0, 8.0])
        single = NBIndex.build(
            db, StarDistance(), num_vantage_points=5, branching=4,
            thresholds=ladder, seed=3,
        )
        sharded = ShardedIndex.build(
            db, StarDistance(), num_shards=4, out_dir=tmp_path,
            num_vantage_points=5, branching=4, thresholds=ladder, seed=3,
        )
        q = quartile_relevance(db)
        want = single.query(q, 4.0, 8)
        got = sharded.query(q, 4.0, 8)
        _assert_same_result(got, want)
        assert got.answer == baseline_greedy(
            db, StarDistance(), q, 4.0, 8
        ).answer
        sharded.invalidate_pools()

    def test_query_flags_match_single_index(self, db, single_index, bundle_dir):
        sharded = _load(bundle_dir, db)
        q = quartile_relevance(db)
        for kwargs in (
            {"stop_on_zero_gain": True},
            {"enable_updates": False},
            {"stop_on_zero_gain": True, "enable_updates": False},
        ):
            want = single_index.query(q, 8.0, 12, **kwargs)
            got = sharded.query(q, 8.0, 12, **kwargs)
            _assert_same_result(got, want)
        sharded.invalidate_pools()

    def test_k_beyond_relevant_set(self, db, single_index, bundle_dir):
        sharded = _load(bundle_dir, db)
        q = quartile_relevance(db)
        want = single_index.query(q, 12.0, 500)
        got = sharded.query(q, 12.0, 500)
        _assert_same_result(got, want)
        assert len(got.answer) <= got.num_relevant
        sharded.invalidate_pools()


# ---------------------------------------------------------------------------
# Coordinator surface
# ---------------------------------------------------------------------------
class TestCoordinator:
    def test_stats_expose_coordinator_accounting(self, db, bundle_dir):
        sharded = _load(bundle_dir, db)
        result = sharded.query(quartile_relevance(db), 12.0, 5)
        coord = result.stats.coordinator
        assert coord["shards"] == 3
        assert coord["rounds"] >= len(result.answer)
        assert coord["pulls"] >= coord["rounds"]
        assert coord["scatter_resolves"] >= 1
        assert sum(coord["shard_relevant"]) == result.num_relevant
        sharded.invalidate_pools()

    def test_obs_metrics_roll_up(self, db, bundle_dir):
        sharded = _load(bundle_dir, db)
        with repro.observe() as run:
            sharded.query(quartile_relevance(db), 12.0, 5)
        counters = run.stats()["counters"]
        assert counters["shard.query.count"] == 1
        assert counters["shard.coordinator.rounds"] >= 1
        assert counters["shard.coordinator.pulls"] >= 1
        sharded.invalidate_pools()

    def test_off_ladder_theta_raises_typed(self, db, bundle_dir):
        sharded = _load(bundle_dir, db)
        with pytest.raises(OffLadderThetaError) as excinfo:
            sharded.query(quartile_relevance(db), 1e6, 3)
        assert excinfo.value.theta == 1e6
        assert excinfo.value.ladder_max == LADDER.values[-1]
        sharded.invalidate_pools()

    def test_unknown_query_kwarg_is_typed(self, db, bundle_dir):
        sharded = _load(bundle_dir, db)
        with pytest.raises(TypeError, match="explode"):
            sharded.query(quartile_relevance(db), 6.0, 3, explode=True)
        sharded.invalidate_pools()

    def test_session_reuse_across_thetas(self, db, single_index, bundle_dir):
        sharded = _load(bundle_dir, db)
        q = quartile_relevance(db)
        session = sharded.session(q)
        for theta in THETAS:
            got = session.query(theta, 4)
            want = single_index.query(q, theta, 4)
            _assert_same_result(got, want)
        sharded.invalidate_pools()

    def test_deadline_degradation_propagates(self, tmp_path):
        tiny = random_database(seed=3, size=16, min_nodes=3, max_nodes=5)
        sharded = ShardedIndex.build(
            tiny, ExactGED(), num_shards=2, out_dir=tmp_path,
            num_vantage_points=4, branching=4,
            thresholds=ThresholdLadder([4.0, 8.0]), seed=0, workers=1,
        )
        sharded.engine._cache.clear()
        for shard in sharded.shards:
            shard._counting._cache.clear()
        result = sharded.query(
            quartile_relevance(tiny, quantile=0.3), 4.0, 3,
            deadline=Deadline(3600.0, expansion_limit=1),
        )
        assert result.answer
        assert result.stats.degraded
        assert result.stats.degradations.get("ged.exact.beam", 0) >= 1
        sharded.invalidate_pools()


# ---------------------------------------------------------------------------
# Manifest + artifact validation
# ---------------------------------------------------------------------------
class TestManifest:
    def test_round_trip(self, db, bundle_dir):
        manifest = ShardManifest.load(bundle_dir / "manifest.json")
        assert manifest.num_shards == 3
        assert manifest.num_graphs == len(db)
        assert manifest.partitioner == "hash"
        assert manifest.ladder == tuple(LADDER.values)
        assert sum(e.num_graphs for e in manifest.shards) == len(db)
        members = np.concatenate([manifest.members(s) for s in range(3)])
        assert sorted(members.tolist()) == list(range(len(db)))

    def test_flipped_byte_is_detected(self, db, bundle_dir, tmp_path):
        text = (bundle_dir / "manifest.json").read_text()
        corrupted = text.replace('"num_graphs": 48', '"num_graphs": 49', 1)
        assert corrupted != text
        target = tmp_path / "manifest.json"
        target.write_text(corrupted)
        with pytest.raises(ManifestError, match="checksum mismatch"):
            ShardManifest.load(target)

    def test_truncated_and_non_manifest_files(self, bundle_dir, tmp_path):
        torn = tmp_path / "torn.json"
        torn.write_text((bundle_dir / "manifest.json").read_text()[:120])
        with pytest.raises(ManifestError):
            ShardManifest.load(torn)
        other = tmp_path / "other.json"
        other.write_text('{"hello": "world"}')
        with pytest.raises(ManifestError, match="not a shard manifest"):
            ShardManifest.load(other)

    def test_unsupported_schema_is_rejected(self, bundle_dir, tmp_path):
        document = json.loads((bundle_dir / "manifest.json").read_text())
        document["manifest"]["schema"] = "repro.shard-manifest/v0"
        canonical = json.dumps(
            document["manifest"], sort_keys=True, separators=(",", ":")
        )
        document["crc32"] = zlib.crc32(canonical.encode())
        target = tmp_path / "manifest.json"
        target.write_text(json.dumps(document))
        with pytest.raises(ManifestError, match="schema"):
            ShardManifest.load(target)

    def test_manifest_error_is_a_persistence_error(self):
        assert issubclass(ManifestError, PersistenceError)

    def test_wrong_database_is_rejected(self, bundle_dir):
        other = random_database(seed=5, size=48)
        with pytest.raises(DatabaseMismatchError):
            _load(bundle_dir, other)

    def test_corrupt_shard_artifact_is_rejected(self, db, bundle_dir, tmp_path):
        for name in os.listdir(bundle_dir):
            (tmp_path / name).write_bytes((bundle_dir / name).read_bytes())
        (tmp_path / "shard-001.npz").write_bytes(b"not an index artifact")
        with pytest.raises(CorruptIndexError, match="stale or tampered"):
            _load(tmp_path, db)


# ---------------------------------------------------------------------------
# Loading + per-shard hot-reload reuse
# ---------------------------------------------------------------------------
class TestReload:
    def test_full_reuse_on_unchanged_bundle(self, db, bundle_dir):
        first = _load(bundle_dir, db)
        second = _load(bundle_dir, db, previous=first)
        assert second.reused_shards == 3
        for i in range(3):
            assert second.shards[i] is first.shards[i]
        first.invalidate_pools()
        second.invalidate_pools()

    def test_partial_reuse_when_one_shard_changes(self, db, bundle_dir, tmp_path):
        for name in os.listdir(bundle_dir):
            (tmp_path / name).write_bytes((bundle_dir / name).read_bytes())
        first = _load(tmp_path, db)
        # Rebuild exactly one shard with a *different* tree shape and point
        # the manifest at its new checksum: only that shard may reload, and
        # answers must not move (correctness is tree-shape independent).
        manifest = ShardManifest.load(tmp_path / "manifest.json")
        members = [int(i) for i in manifest.members(0)]
        rebuilt = NBIndex.build(
            db.subset(members), StarDistance(), num_vantage_points=4,
            branching=3, thresholds=LADDER, seed=99,
        )
        save_index(rebuilt, tmp_path / "shard-000.npz")
        entries = list(manifest.shards)
        entries[0] = dataclasses.replace(
            entries[0],
            checksum=zlib.crc32((tmp_path / "shard-000.npz").read_bytes()),
        )
        dataclasses.replace(manifest, shards=tuple(entries)).save(
            tmp_path / "manifest.json"
        )
        second = _load(tmp_path, db, previous=first)
        assert second.reused_shards == 2
        assert second.shards[0] is not first.shards[0]
        assert second.shards[1] is first.shards[1]
        assert second.shards[2] is first.shards[2]
        # Still the same bit-identical answers after the partial reload.
        q = quartile_relevance(db)
        assert second.query(q, 8.0, 4).answer == first.query(q, 8.0, 4).answer
        first.invalidate_pools()
        second.invalidate_pools()

    def test_index_manager_watches_manifest(self, db, bundle_dir):
        sharded = _load(bundle_dir, db)
        manager = IndexManager(
            sharded, database=db, distance=StarDistance(),
            watch_path=bundle_dir / "manifest.json",
        )
        assert manager.maybe_reload() is False  # unchanged fingerprint
        os.utime(bundle_dir / "manifest.json")
        assert manager.maybe_reload() is True
        assert manager.generation == 1
        assert manager.index.reused_shards == 3  # per-shard reuse kicked in
        manager.index.invalidate_pools()


# ---------------------------------------------------------------------------
# Service + facade integration
# ---------------------------------------------------------------------------
class TestServiceIntegration:
    def test_service_answers_match_single_index(self, db, single_index, bundle_dir):
        sharded = repro.open_index(bundle_dir / "manifest.json", db, shards=True)
        with QueryService(sharded, config=ServiceConfig()) as service:
            response = service.call(
                QueryRequest(id=1, op="query", theta=12.0, k=5)
            )
            assert response["ok"], response
            want = single_index.query(quartile_relevance(db), 12.0, 5)
            assert response["result"]["answer"] == want.answer
            stats = service.stats()
            assert stats["index"]["num_shards"] == 3
            assert stats["index"]["tree_nodes"] == sharded.tree_nodes
            reloaded = service.call(QueryRequest(
                id=2, op="reload", path=str(bundle_dir / "manifest.json"),
            ))
            assert reloaded["ok"], reloaded
            assert service.manager.index.reused_shards == 3

    def test_off_ladder_theta_is_a_client_error(self, db, bundle_dir):
        sharded = repro.open_index(bundle_dir / "manifest.json", db, shards=True)
        with QueryService(sharded, config=ServiceConfig()) as service:
            response = service.call(
                QueryRequest(id=3, op="query", theta=1e6, k=3)
            )
            assert not response["ok"]
            assert response["error"]["code"] == "invalid_request"
            assert "ladder" in response["error"]["message"]
            # A bad theta is not a backend failure: breaker stays closed,
            # nothing lands in the crash journal.
            assert service.breaker.state == "closed"
            assert service.journal.stats()["crashes"] == 0

    def test_load_shards_facade(self, db, bundle_dir):
        sharded = repro.open_index(bundle_dir / "manifest.json", db, shards=True)
        assert isinstance(sharded, ShardedIndex)
        assert sharded.num_shards == 3
        assert sharded.stats()["num_shards"] == 3
        sharded.invalidate_pools()

    def test_offladder_counter_increments_on_sharded_path(self, db, bundle_dir):
        sharded = _load(bundle_dir, db)
        with repro.observe() as run:
            with pytest.raises(OffLadderThetaError):
                sharded.query(quartile_relevance(db), 1e6, 3)
        assert run.stats()["counters"]["index.offladder_theta"] == 1
        sharded.invalidate_pools()

"""Unit tests for the query (relevance) functions of Table 1."""

import numpy as np
import pytest

from repro.graphs import GraphDatabase, path_graph
from repro.graphs.relevance import (
    AverageScoreThreshold,
    CallableQuery,
    ExpertiseOverlapQuery,
    JaccardTopicQuery,
    WeightedScoreThreshold,
    quartile_relevance,
)


class TestAverageScoreThreshold:
    def test_scores_mean_over_dims(self):
        q = AverageScoreThreshold(dims=[0, 2], threshold=0.5)
        matrix = np.array([[1.0, 9.0, 0.0], [0.2, 9.0, 0.2]])
        assert list(q.scores(matrix)) == [0.5, pytest.approx(0.2)]

    def test_call_and_label(self):
        q = AverageScoreThreshold(dims=[0], threshold=0.5)
        assert q([0.6]) is True
        assert q.label([0.6]) == 1
        assert q.label([0.4]) == -1

    def test_mask(self):
        q = AverageScoreThreshold(dims=[0], threshold=0.5)
        mask = q.mask(np.array([[0.6], [0.4], [0.5]]))
        assert list(mask) == [True, False, True]

    def test_empty_dims_rejected(self):
        with pytest.raises(ValueError):
            AverageScoreThreshold(dims=[], threshold=0.5)


class TestWeightedScoreThreshold:
    def test_dot_product(self):
        q = WeightedScoreThreshold([1.0, -1.0], threshold=0.0)
        assert q.score([3.0, 1.0]) == 2.0
        assert q([1.0, 3.0]) is False

    def test_dimension_mismatch(self):
        q = WeightedScoreThreshold([1.0, 2.0], threshold=0.0)
        with pytest.raises(ValueError, match="dim"):
            q.scores(np.zeros((2, 3)))


class TestJaccardTopicQuery:
    def test_exact_match(self):
        q = JaccardTopicQuery(topics=[0, 1], num_topics=4, threshold=1.0)
        assert q([1, 1, 0, 0]) is True
        assert q([1, 1, 1, 0]) is False  # union grows

    def test_partial_overlap_value(self):
        q = JaccardTopicQuery(topics=[0], num_topics=3, threshold=0.0)
        # g = {0, 1}: |∩|=1, |∪|=2
        assert q.score([1, 1, 0]) == pytest.approx(0.5)

    def test_no_topic_graph(self):
        q = JaccardTopicQuery(topics=[0], num_topics=2, threshold=0.5)
        assert q.score([0, 0]) == 0.0

    def test_empty_topics_rejected(self):
        with pytest.raises(ValueError):
            JaccardTopicQuery(topics=[], num_topics=3, threshold=0.5)

    def test_out_of_range_topic_rejected(self):
        with pytest.raises(ValueError):
            JaccardTopicQuery(topics=[5], num_topics=3, threshold=0.5)


class TestExpertiseOverlapQuery:
    def test_intersection_count(self):
        q = ExpertiseOverlapQuery(expertise=[0, 2], num_areas=4, threshold=2.0)
        assert q([1, 0, 1, 0]) is True
        assert q([1, 0, 0, 1]) is False


class TestCallableQuery:
    def test_adapts_callable(self):
        q = CallableQuery(lambda row: float(row.sum()), threshold=1.0)
        matrix = np.array([[0.5, 0.6], [0.1, 0.2]])
        assert list(q.mask(matrix)) == [True, False]


class TestQuartileRelevance:
    def _db(self):
        graphs = [path_graph(["C"]) for _ in range(8)]
        return GraphDatabase(graphs, np.arange(8.0))

    def test_top_quartile(self):
        db = self._db()
        q = quartile_relevance(db)
        relevant = db.relevant_indices(q)
        # Scores 0..7, 75th percentile = 5.25 → {6, 7}... threshold is
        # inclusive so values >= quantile qualify.
        assert set(int(i) for i in relevant) == {6, 7}

    def test_custom_quantile(self):
        db = self._db()
        q = quartile_relevance(db, quantile=0.5)
        assert len(db.relevant_indices(q)) >= 4

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            quartile_relevance(self._db(), quantile=1.5)

    def test_dims_subset(self):
        graphs = [path_graph(["C"]) for _ in range(4)]
        feats = np.array([[0.0, 9.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        db = GraphDatabase(graphs, feats)
        q = quartile_relevance(db, dims=[0], quantile=0.5)
        relevant = set(int(i) for i in db.relevant_indices(q))
        assert 3 in relevant and 0 not in relevant

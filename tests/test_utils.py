"""Utility modules: rng plumbing, timing, validation."""

import time

import numpy as np
import pytest

from repro.utils import (
    Stopwatch,
    ensure_rng,
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    timed,
)
from repro.utils.rng import spawn


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert ensure_rng(7).integers(1000) == ensure_rng(7).integers(1000)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_spawn_children_independent_and_deterministic(self):
        a = spawn(np.random.default_rng(3), 3)
        b = spawn(np.random.default_rng(3), 3)
        for ga, gb in zip(a, b):
            assert ga.integers(10**6) == gb.integers(10**6)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.measure():
            time.sleep(0.01)
        first = sw.elapsed
        with sw.measure():
            time.sleep(0.01)
        assert sw.elapsed > first

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw.measure():
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_timed_context(self):
        with timed() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        require_non_negative(0.0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_require_in_range(self):
        require_in_range(5, 0, 10, "x")
        with pytest.raises(ValueError):
            require_in_range(11, 0, 10, "x")

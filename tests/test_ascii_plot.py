"""ASCII chart rendering for figure-type experiment results."""

import pytest

from repro.bench.ascii_plot import ascii_chart
from repro.bench.harness import ExperimentResult
from repro.bench.printers import chart_for, print_and_save


def _series_result(name="fig_test"):
    rows = [
        {"x": 1.0, "fast_s": 0.01, "slow_s": 1.0},
        {"x": 2.0, "fast_s": 0.02, "slow_s": 3.0},
        {"x": 3.0, "fast_s": 0.05, "slow_s": 9.0},
    ]
    return ExperimentResult(name=name, columns=["x", "fast_s", "slow_s"],
                            rows=rows)


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        chart = ascii_chart(_series_result(), "x", ["fast_s", "slow_s"])
        assert "o=fast_s" in chart
        assert "x=slow_s" in chart
        assert "x: 1 .. 3" in chart
        assert "o" in chart and "+" not in chart.split("\n")[0]

    def test_log_scale_notes_itself(self):
        chart = ascii_chart(_series_result(), "x", ["slow_s"], log_y=True)
        assert "(log y)" in chart

    def test_orders_of_magnitude_separate_on_log_scale(self):
        chart = ascii_chart(
            _series_result(), "x", ["fast_s", "slow_s"], log_y=True, height=10
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        # fast series sits in the lower half, slow in the upper half.
        top = "".join(lines[: len(lines) // 2])
        bottom = "".join(lines[len(lines) // 2:])
        assert "x" in top
        assert "o" in bottom

    def test_missing_values_skipped(self):
        result = ExperimentResult(
            "fig_x", ["x", "y"],
            [{"x": 1.0, "y": 2.0}, {"x": 2.0, "y": None}],
        )
        chart = ascii_chart(result, "x", ["y"])
        assert "y" in chart

    def test_no_points_rejected(self):
        result = ExperimentResult("fig_x", ["x", "y"], [{"x": None, "y": None}])
        with pytest.raises(ValueError):
            ascii_chart(result, "x", ["y"])

    def test_title(self):
        chart = ascii_chart(_series_result(), "x", ["fast_s"], title="T")
        assert chart.splitlines()[0] == "T"

    def test_constant_series_does_not_crash(self):
        result = ExperimentResult(
            "fig_flat", ["x", "y"],
            [{"x": 1.0, "y": 5.0}, {"x": 2.0, "y": 5.0}],
        )
        assert "o=y" in ascii_chart(result, "x", ["y"])


class TestChartRegistry:
    def test_registered_experiment_gets_chart(self):
        rows = [
            {"size": 100, "nbindex_s": 0.01, "ctree_greedy_s": 0.1,
             "disc_s": 0.05, "div_s": 0.1},
            {"size": 200, "nbindex_s": 0.03, "ctree_greedy_s": 0.5,
             "disc_s": 0.2, "div_s": 0.4},
        ]
        result = ExperimentResult(
            "fig6bd_time_vs_size_dud",
            ["size", "nbindex_s", "ctree_greedy_s", "disc_s", "div_s"],
            rows,
        )
        chart = chart_for(result)
        assert chart is not None
        assert "nbindex_s" in chart

    def test_unregistered_experiment_has_no_chart(self):
        assert chart_for(ExperimentResult("custom_thing", ["a"], [{"a": 1}])) is None

    def test_print_and_save_embeds_chart(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        rows = [
            {"relevant": 10, "answer_size": 4, "compression_ratio": 2.0},
            {"relevant": 30, "answer_size": 11, "compression_ratio": 2.5},
        ]
        result = ExperimentResult(
            "fig2a_disc_growth_dud",
            ["relevant", "answer_size", "compression_ratio"],
            rows,
        )
        text = print_and_save(result)
        assert "o=answer_size" in text
        assert (tmp_path / "fig2a_disc_growth_dud.txt").read_text() == text

"""M-tree and C-tree: range-query exactness and pruning effectiveness."""

import pytest

from repro.baselines import Closure, CTree, MTree
from repro.ged import CountingDistance, StarDistance, size_lower_bound
from repro.graphs import path_graph
from tests.conftest import random_database


def _truth(db, dist, gid, theta):
    return sorted(
        j for j in range(len(db)) if dist(db[gid], db[j]) <= theta + 1e-9
    )


@pytest.mark.parametrize("tree_cls", [MTree, CTree])
class TestRangeQueryExactness:
    @pytest.mark.parametrize("seed,theta", [(0, 3.0), (1, 5.0), (2, 8.0)])
    def test_matches_linear_scan(self, tree_cls, seed, theta):
        db = random_database(seed=seed, size=50)
        dist = StarDistance()
        tree = tree_cls(db.graphs, dist, capacity=6, seed=seed)
        for gid in range(0, 50, 9):
            assert sorted(tree.range_query(gid, theta)) == _truth(
                db, dist, gid, theta
            )

    def test_external_graph_query(self, tree_cls):
        db = random_database(seed=3, size=40)
        dist = StarDistance()
        tree = tree_cls(db.graphs, dist, capacity=6, seed=0)
        external = path_graph(["C", "N", "O", "C"])
        theta = 6.0
        expected = sorted(
            j for j in range(40) if dist(external, db[j]) <= theta + 1e-9
        )
        assert sorted(tree.range_query_graph(external, theta)) == expected

    def test_zero_theta_returns_duplicates_only(self, tree_cls):
        db = random_database(seed=4, size=30)
        dist = StarDistance()
        tree = tree_cls(db.graphs, dist, capacity=5, seed=0)
        hits = tree.range_query(7, 0.0)
        assert 7 in hits
        for h in hits:
            assert dist(db[7], db[h]) == 0.0

    def test_capacity_validation(self, tree_cls):
        db = random_database(seed=5, size=10)
        with pytest.raises(ValueError):
            tree_cls(db.graphs, StarDistance(), capacity=1, seed=0)

    def test_empty_rejected(self, tree_cls):
        with pytest.raises(ValueError):
            tree_cls([], StarDistance(), capacity=4, seed=0)

    def test_duplicate_graphs_handled(self, tree_cls):
        graphs = [path_graph(["C", "C"]) for _ in range(15)]
        for i, g in enumerate(graphs):
            g.graph_id = i
        tree = tree_cls(graphs, StarDistance(), capacity=4, seed=0)
        assert sorted(tree.range_query(0, 0.5)) == list(range(15))


class TestPruning:
    def test_mtree_saves_distance_calls_at_query_time(self):
        db = random_database(seed=6, size=60)
        counting = CountingDistance(StarDistance())
        tree = MTree(db.graphs, counting, capacity=8, seed=0)
        before = counting.calls
        tree.range_query(5, 2.0)  # small θ: heavy pruning expected
        spent = counting.calls - before
        assert spent < 60

    def test_ctree_closure_bound_validity(self):
        db = random_database(seed=7, size=30)
        dist = StarDistance()
        tree = CTree(db.graphs, dist, capacity=5, seed=0)

        def check(node):
            for member in _leaf_members(node):
                for probe in range(0, 30, 7):
                    lb = node.closure.distance_lower_bound(db[probe])
                    assert lb <= dist(db[probe], db[member]) + 1e-9
            for child in node.children:
                check(child)

        check(tree.root)


def _leaf_members(node):
    if node.is_leaf:
        return list(node.bucket)
    out = []
    for child in node.children:
        out.extend(_leaf_members(child))
    return out


class TestClosure:
    def test_of_graph(self):
        g = path_graph(["C", "C", "O"])
        closure = Closure.of_graph(g)
        assert closure.label_max == {"C": 2, "O": 1}
        assert closure.nodes_lo == closure.nodes_hi == 3
        assert closure.edges_lo == closure.edges_hi == 2

    def test_union_envelopes(self):
        a = Closure.of_graph(path_graph(["C", "C"]))
        b = Closure.of_graph(path_graph(["O", "O", "O"]))
        union = Closure.union([a, b])
        assert union.label_max == {"C": 2, "O": 3}
        assert union.nodes_lo == 2 and union.nodes_hi == 3

    def test_lower_bound_matches_size_bound_for_singleton(self):
        g = path_graph(["C", "C", "O"])
        h = path_graph(["N", "N"])
        closure = Closure.of_graph(g)
        assert closure.distance_lower_bound(h) == pytest.approx(
            size_lower_bound(h, g)
        )

    def test_union_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            Closure.union([])

"""Star edit distance: metric axioms and the GED sandwich (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ged import (
    BipartiteGED,
    ExactGED,
    StarDistance,
    bipartite_upper_bound,
    check_metric_axioms,
    star_assignment_value,
    star_ged_lower_bound,
)
from repro.graphs import LabeledGraph, cycle_graph, path_graph, star_graph

# ---------------------------------------------------------------------------
# Hypothesis graph strategy: small random labelled graphs.
# ---------------------------------------------------------------------------
_LABELS = ("C", "N", "O")


@st.composite
def small_graph(draw, max_nodes=6):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = [draw(st.sampled_from(_LABELS)) for _ in range(n)]
    edges = []
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for u, v in possible:
        if draw(st.booleans()):
            edges.append((u, v, draw(st.sampled_from(("-", "=")))))
    return LabeledGraph(labels, edges)


class TestBasics:
    def test_identical(self):
        sd = StarDistance()
        g = cycle_graph(["C", "N", "O"])
        assert sd(g, g) == 0.0

    def test_empty_graphs(self):
        sd = StarDistance()
        assert sd(LabeledGraph([]), LabeledGraph([])) == 0.0

    def test_empty_vs_nonempty(self):
        sd = StarDistance()
        g = path_graph(["C", "C"])
        # two stars deleted: (1 + deg) each = 2 + 2
        assert sd(LabeledGraph([]), g) == 4.0

    def test_single_relabel_touches_two_stars(self):
        sd = StarDistance()
        a = path_graph(["C", "C", "O"])
        b = path_graph(["C", "C", "N"])
        # the relabelled vertex's star root (1) + the neighbor's branch (1)
        assert sd(a, b) == 2.0

    def test_symmetry(self):
        sd = StarDistance()
        a = star_graph("N", ["C", "O"])
        b = cycle_graph(["C", "C", "C"])
        assert sd(a, b) == sd(b, a)

    def test_values_are_half_integers(self):
        sd = StarDistance()
        rng = np.random.default_rng(1)
        for _ in range(20):
            n = int(rng.integers(1, 6))
            labels = [_LABELS[int(rng.integers(3))] for _ in range(n)]
            edges = [(i, int(rng.integers(i)), "-") for i in range(1, n)]
            a = LabeledGraph(labels, edges)
            b = path_graph(["C"] * int(rng.integers(1, 6)))
            value = sd(a, b)
            assert value == pytest.approx(round(value * 2) / 2)

    def test_normalized_variant_smaller(self):
        raw = StarDistance()
        norm = StarDistance(normalized=True)
        a = star_graph("C", ["N"] * 4)
        b = path_graph(["C", "C"])
        assert norm(a, b) <= raw(a, b)

    def test_cache_reuse(self):
        sd = StarDistance()
        g = path_graph(["C", "N"])
        h = path_graph(["C", "O"])
        sd(g, h)
        assert len(sd._profiles) == 2
        sd(g, h)
        assert len(sd._profiles) == 2
        sd.clear_cache()
        assert len(sd._profiles) == 0

    def test_cache_survives_id_recycling(self):
        # Profiles are keyed by id(); CPython recycles ids as soon as a
        # graph is collected, so a cache hit must verify the entry was
        # computed for *this* graph.  (Regression: transient graphs in
        # property tests inherited a stale profile and got distances from
        # an unrelated pair.)
        sd = StarDistance()
        reference = path_graph(["C", "C"])
        for _ in range(200):
            g = star_graph("C", ["N"] * 4)
            assert sd(g, reference) == sd(g, reference) == 11.0
            del g  # eligible for collection; its id may be reused

    def test_cache_evicts_collected_graphs(self):
        sd = StarDistance()
        pinned = path_graph(["C", "N"])
        sd(pinned, path_graph(["C", "O"]))  # second arg is transient
        import gc

        gc.collect()
        live = [entry[0]() for entry in sd._profiles.values()]
        assert pinned in live
        assert sum(g is None for g in live) == 0  # dead entries evicted


class TestMetricAxioms:
    def test_axioms_on_fixed_set(self):
        graphs = [
            path_graph(["C", "O"]),
            cycle_graph(["C", "C", "C"]),
            star_graph("N", ["C", "O", "O"]),
            path_graph(["C", "C", "C", "O"]),
            LabeledGraph(["S"]),
            LabeledGraph(["C", "N"], [(0, 1, "=")]),
        ]
        assert check_metric_axioms(graphs, StarDistance()) == []

    @settings(max_examples=60, deadline=None)
    @given(small_graph(), small_graph(), small_graph())
    def test_triangle_inequality(self, a, b, c):
        sd = StarDistance()
        assert sd(a, c) <= sd(a, b) + sd(b, c) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(small_graph(), small_graph())
    def test_symmetry_property(self, a, b):
        sd = StarDistance()
        assert sd(a, b) == pytest.approx(sd(b, a))

    @settings(max_examples=40, deadline=None)
    @given(small_graph())
    def test_identity_property(self, g):
        assert StarDistance()(g, g) == 0.0


class TestGEDSandwich:
    @settings(max_examples=30, deadline=None)
    @given(small_graph(max_nodes=5), small_graph(max_nodes=5))
    def test_lower_and_upper_bound_exact_ged(self, a, b):
        exact = ExactGED()(a, b)
        assert star_ged_lower_bound(a, b) <= exact + 1e-9
        assert bipartite_upper_bound(a, b) >= exact - 1e-9

    def test_bipartite_equals_exact_for_identical(self):
        g = cycle_graph(["C", "N", "O"])
        assert BipartiteGED()(g, g) == 0.0

    def test_bipartite_empty_source(self):
        b = path_graph(["C", "N"])
        assert BipartiteGED()(LabeledGraph([]), b) == 3.0

    def test_assignment_value_positive_for_different(self):
        a = path_graph(["C", "C"])
        b = path_graph(["N", "N"])
        assert star_assignment_value(a, b) > 0.0

"""Cross-module integration: the full pipeline on each synthetic dataset and
through the public facade."""

import pytest

from repro import TopKRepresentativeQuery
from repro.analysis import evaluate_answers
from repro.baselines import disc_greedy, div_topk, traditional_top_k, answer_set_redundancy
from repro.core import baseline_greedy
from repro.datasets import load
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex
from tests.test_nbindex import assert_valid_greedy_trajectory


@pytest.fixture(scope="module", params=["dud", "dblp", "amazon"])
def dataset(request):
    dist = StarDistance()
    spec = load(request.param, dist, num_graphs=80, seed=7)
    return spec, dist


class TestFullPipelinePerDataset:
    def test_nbindex_valid_greedy_on_dataset(self, dataset):
        spec, dist = dataset
        q = quartile_relevance(spec.database)
        index = NBIndex.build(
            spec.database, dist, num_vantage_points=8, branching=4,
            thresholds=spec.ladder, seed=1,
        )
        result = index.query(q, spec.theta, 5)
        assert_valid_greedy_trajectory(spec.database, dist, q, spec.theta, result)
        assert len(result.answer) >= 1

    def test_quality_ordering_rep_vs_div(self, dataset):
        spec, dist = dataset
        q = quartile_relevance(spec.database)
        theta, k = spec.theta, 5
        rep = baseline_greedy(spec.database, dist, q, theta, k)
        div = div_topk(spec.database, dist, q, theta, k, 1.0)
        assert rep.pi >= div.pi - 1e-9

    def test_disc_covers_everything(self, dataset):
        spec, dist = dataset
        q = quartile_relevance(spec.database)
        result = disc_greedy(spec.database, dist, q, spec.theta)
        assert result.pi == pytest.approx(1.0)


class TestQualitativeContrast:
    def test_representative_answer_more_diverse_than_topk(self):
        """The Fig. 7 phenomenon: under a single-target query (the paper
        uses AChE affinity), the traditional top-k answer collapses onto one
        structural family while REP spreads across families."""
        dist = StarDistance()
        spec = load("dud", dist, num_graphs=100, seed=9,
                    outlier_fraction=0.0)
        q = quartile_relevance(spec.database, dims=[0])
        k = 5
        top = traditional_top_k(spec.database, q, k)
        rep = baseline_greedy(spec.database, dist, q, spec.theta, k)
        top_spread = answer_set_redundancy(spec.database, dist, top)
        rep_spread = answer_set_redundancy(spec.database, dist, rep.answer)
        assert rep_spread["mean"] >= top_spread["mean"]

    def test_rep_covers_more_than_topk(self):
        dist = StarDistance()
        spec = load("dud", dist, num_graphs=100, seed=9)
        q = quartile_relevance(spec.database)
        k = 5
        answers = {
            "topk": traditional_top_k(spec.database, q, k),
            "rep": baseline_greedy(spec.database, dist, q, spec.theta, k).answer,
        }
        evaluated = evaluate_answers(spec.database, dist, q, spec.theta, answers)
        assert evaluated["rep"]["pi"] >= evaluated["topk"]["pi"]


class TestPublicFacade:
    def test_facade_nbindex_and_greedy(self):
        dist = StarDistance()
        spec = load("dud", dist, num_graphs=60, seed=5)
        q = quartile_relevance(spec.database)
        engine = TopKRepresentativeQuery(
            spec.database, dist, num_vantage_points=6, branching=4, seed=0,
        )
        via_index = engine.run(q, spec.theta, 4)
        via_greedy = engine.run(q, spec.theta, 4, method="greedy")
        assert_valid_greedy_trajectory(
            spec.database, dist, q, spec.theta, via_index
        )
        assert via_index.gains[0] == via_greedy.gains[0]

    def test_facade_unknown_method(self):
        dist = StarDistance()
        spec = load("dud", dist, num_graphs=30, seed=5)
        engine = TopKRepresentativeQuery(spec.database, dist)
        with pytest.raises(ValueError, match="unknown method"):
            engine.run(quartile_relevance(spec.database), spec.theta, 3,
                       method="magic")

    def test_facade_default_distance_and_lazy_index(self):
        dist = StarDistance()
        spec = load("dud", dist, num_graphs=30, seed=6)
        engine = TopKRepresentativeQuery(spec.database, num_vantage_points=4,
                                         branching=3, seed=0)
        assert "lazy" in repr(engine)
        engine.run(quartile_relevance(spec.database), spec.theta, 2)
        assert "built" in repr(engine)

    def test_facade_session(self):
        dist = StarDistance()
        spec = load("dud", dist, num_graphs=40, seed=6)
        engine = TopKRepresentativeQuery(spec.database, dist,
                                         num_vantage_points=4, branching=3,
                                         seed=0)
        session = engine.session(quartile_relevance(spec.database))
        a = session.query(spec.theta, 3)
        b = session.query(spec.theta * 1.2, 3)
        assert len(a.answer) >= 1 and len(b.answer) >= 1

"""Benchmark harness plumbing: contexts, result containers, printers."""

import pytest

import repro.bench.harness as harness
from repro.bench import (
    BenchContext,
    ExperimentResult,
    bench_scale,
    dataset_size,
    format_table,
    sweep_sizes,
    timed_call,
)


class TestScales:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        assert bench_scale() == "medium"
        assert dataset_size("dud") == harness.SCALES["medium"]["dud"]

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "gigantic")
        with pytest.raises(ValueError):
            bench_scale()

    def test_sweep_sizes_increasing(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        sizes = sweep_sizes()
        assert list(sizes) == sorted(sizes)


class TestExperimentResult:
    def test_column_extraction(self):
        result = ExperimentResult(
            name="x", columns=["a", "b"],
            rows=[{"a": 1, "b": 2}, {"a": 3}],
        )
        assert result.column("a") == [1, 3]
        assert result.column("b") == [2, None]

    def test_format_table_alignment_and_cells(self):
        result = ExperimentResult(
            name="demo",
            columns=["name", "value", "flag"],
            rows=[
                {"name": "alpha", "value": 0.12345, "flag": True},
                {"name": "b", "value": 12345.6, "flag": False},
                {"name": "c", "value": None, "flag": True},
            ],
            notes="a note",
        )
        text = format_table(result)
        assert "== demo ==" in text
        assert "a note" in text
        assert "0.123" in text
        assert "1.23e+04" in text
        assert "yes" in text and "no" in text
        assert "-" in text  # the None cell

    def test_write_result(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        result = ExperimentResult("probe", ["x"], [{"x": 1}])
        path = harness.write_result(result, format_table(result))
        assert path.read_text().startswith("== probe ==")


class TestTimedCall:
    def test_returns_result_and_elapsed(self):
        value, seconds = timed_call(lambda x: x * 2, 21)
        assert value == 42
        assert seconds >= 0.0


class TestBenchContext:
    @pytest.fixture(scope="class")
    def ctx(self):
        return BenchContext.create("dud", num_graphs=40, seed=3)

    def test_lazy_engines_cached(self, ctx):
        first = ctx.nbindex
        assert ctx.nbindex is first
        assert ctx.mtree is ctx.mtree
        assert ctx.ctree is ctx.ctree
        assert ctx.matrix is ctx.matrix

    def test_calibrated_theta_positive(self, ctx):
        assert ctx.theta > 0

    def test_relevance_quantiles(self, ctx):
        strict = ctx.relevance(quantile=0.9)
        loose = ctx.relevance(quantile=0.25)
        assert len(ctx.database.relevant_indices(strict)) <= len(
            ctx.database.relevant_indices(loose)
        )

"""Unit tests for the LabeledGraph data model."""

import networkx as nx
import pytest

from repro.graphs import (
    DEFAULT_EDGE_LABEL,
    LabeledGraph,
    cycle_graph,
    path_graph,
    star_graph,
)


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph([])
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_nodes_and_labels(self):
        g = LabeledGraph(["C", "N", "O"])
        assert g.num_nodes == 3
        assert g.node_labels == ("C", "N", "O")
        assert g.node_label(1) == "N"
        assert list(g.nodes()) == [0, 1, 2]

    def test_edges_with_and_without_labels(self):
        g = LabeledGraph(["C", "C", "O"], [(0, 1), (1, 2, "=")])
        assert g.num_edges == 2
        assert g.edge_label(0, 1) == DEFAULT_EDGE_LABEL
        assert g.edge_label(1, 2) == "="
        assert g.edge_label(2, 1) == "="  # undirected

    def test_labels_coerced_to_str(self):
        g = LabeledGraph([1, 2], [(0, 1, 3)])
        assert g.node_labels == ("1", "2")
        assert g.edge_label(0, 1) == "3"

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            LabeledGraph(["C", "C"], [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            LabeledGraph(["C", "C"], [(0, 1), (1, 0)])

    def test_rejects_out_of_range_vertex(self):
        with pytest.raises(ValueError, match="outside"):
            LabeledGraph(["C", "C"], [(0, 2)])

    def test_rejects_malformed_edge(self):
        with pytest.raises(ValueError, match="edge must be"):
            LabeledGraph(["C", "C"], [(0,)])


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = star_graph("N", ["C", "C", "O"])
        assert g.degree(0) == 3
        assert sorted(g.neighbors(0)) == [1, 2, 3]
        assert g.degree(1) == 1

    def test_has_edge_symmetric(self):
        g = path_graph(["C", "N", "O"])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_edges_yields_each_once_with_u_lt_v(self):
        g = cycle_graph(["C", "C", "C", "C"])
        edges = list(g.edges())
        assert len(edges) == 4
        assert all(u < v for u, v, _ in edges)

    def test_label_histogram(self):
        g = LabeledGraph(["C", "C", "O"])
        assert g.label_histogram() == {"C": 2, "O": 1}

    def test_edge_label_histogram(self):
        g = LabeledGraph(["C", "C", "C"], [(0, 1, "-"), (1, 2, "=")])
        assert g.edge_label_histogram() == {"-": 1, "=": 1}


class TestStars:
    def test_star_of_leaf(self):
        g = path_graph(["C", "N", "O"])
        root, branches = g.star(0)
        assert root == "C"
        assert branches == ((DEFAULT_EDGE_LABEL, "N"),)

    def test_star_branches_sorted(self):
        g = LabeledGraph(["X", "B", "A"], [(0, 1), (0, 2)])
        _, branches = g.star(0)
        assert branches == ((DEFAULT_EDGE_LABEL, "A"), (DEFAULT_EDGE_LABEL, "B"))

    def test_stars_count(self):
        g = cycle_graph(["C"] * 5)
        assert len(g.stars()) == 5


class TestValueSemantics:
    def test_equality_same_structure(self):
        a = path_graph(["C", "N"])
        b = path_graph(["C", "N"])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_labels(self):
        assert path_graph(["C", "N"]) != path_graph(["C", "O"])

    def test_inequality_on_edges(self):
        a = LabeledGraph(["C", "C", "C"], [(0, 1)])
        b = LabeledGraph(["C", "C", "C"], [(1, 2)])
        assert a != b

    def test_graph_id_does_not_affect_equality(self):
        a = path_graph(["C", "N"])
        b = path_graph(["C", "N"])
        a.graph_id = 5
        b.graph_id = 9
        assert a == b

    def test_eq_other_type(self):
        assert path_graph(["C"]) != "not a graph"


class TestNetworkxInterop:
    def test_roundtrip(self):
        g = LabeledGraph(["C", "N", "O"], [(0, 1, "="), (1, 2, "-")])
        back = LabeledGraph.from_networkx(g.to_networkx())
        assert back == g

    def test_from_networkx_defaults(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        g = LabeledGraph.from_networkx(nxg)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert set(g.node_labels) == {"a", "b"}
        assert next(iter(g.edges()))[2] == DEFAULT_EDGE_LABEL


class TestHelpers:
    def test_path_graph(self):
        g = path_graph(["A", "B", "C"])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_cycle_graph_requires_three(self):
        with pytest.raises(ValueError):
            cycle_graph(["A", "B"])

    def test_cycle_graph(self):
        g = cycle_graph(["A", "B", "C"])
        assert g.num_edges == 3
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_star_graph(self):
        g = star_graph("X", ["A"] * 4)
        assert g.degree(0) == 4
        assert g.num_edges == 4

    def test_repr_mentions_sizes(self):
        g = path_graph(["A", "B"])
        assert "|V|=2" in repr(g)
        assert "|E|=1" in repr(g)

"""Replica failover benchmark: tail latency + availability vs kill rate.

Opens one shard bundle through :class:`repro.replica.ReplicatedIndex`
with R ∈ {1, 2, 3} worker processes per shard while a killer thread
SIGKILLs a random live worker at a configured rate.  Per configuration
it records:

* **latency** — p50/p99 per-query wall clock.  With R ≥ 2 a kill costs
  one failover hop; with R = 1 it costs a restart wait or a degraded
  answer, and the tail shows the difference.
* **availability** — the fraction of queries answered *fully* (not
  flagged partial).  Every query returns — the degraded path never
  raises — so unavailability here means "answer covered only the
  surviving shards".
* **supervision counters** — spawns/restarts/deaths actually injected,
  so a row with ``kills: 0`` cannot masquerade as resilience.

Correctness under churn is enforced elsewhere (tests + replica smoke);
this benchmark measures the *cost* of surviving it.  Runnable standalone
(``python benchmarks/bench_replica_failover.py``) or under pytest; both
write ``BENCH_replica_failover.json`` at the repository root.
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets import GENERATORS
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.pivec import ThresholdLadder
from repro.replica import ReplicatedIndex
from repro.shard import build_shards

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_replica_failover.json"

LADDER = ThresholdLadder((2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0))
BUILD = dict(num_vantage_points=6, branching=4)


class _Killer:
    """SIGKILLs a random live worker every ``1 / rate`` seconds."""

    def __init__(self, cluster, rate_per_s: float, seed: int):
        self.cluster = cluster
        self.rate = rate_per_s
        self.rng = random.Random(seed)
        self.kills = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        if self.rate > 0:
            self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def _run(self):
        supervisor = self.cluster.supervisor
        while not self._stop.wait(1.0 / self.rate):
            live = [
                handle
                for shard_id in range(self.cluster.num_shards)
                for handle in supervisor.live(shard_id)
            ]
            if not live:
                continue
            victim = self.rng.choice(live)
            try:
                victim.proc.kill()
                self.kills += 1
            except (OSError, AttributeError):
                pass


def failover_benchmark(
    num_graphs: int = 48,
    num_shards: int = 3,
    seed: int = 17,
    replicas=(1, 2, 3),
    kill_rates=(0.0, 2.0, 5.0),
    num_queries: int = 60,
):
    db = GENERATORS["dud"](num_graphs=num_graphs, seed=seed)
    distance = StarDistance()
    query_fn = quartile_relevance(db, quantile=0.5)
    thetas = (6.0, 8.0, 12.0)

    rows = []
    with tempfile.TemporaryDirectory() as out_dir:
        manifest = build_shards(
            db, distance, num_shards=num_shards, out_dir=out_dir,
            thresholds=LADDER, seed=7, **BUILD,
        )
        for R in replicas:
            for rate in kill_rates:
                with ReplicatedIndex.open(
                    manifest, db, distance, replicas=R,
                    heartbeat_s=0.1, op_timeout_s=5.0,
                ) as cluster, _Killer(cluster, rate, seed) as killer:
                    session = cluster.session(query_fn)
                    latencies = []
                    partial = 0
                    for i in range(num_queries):
                        theta = thetas[i % len(thetas)]
                        k = 2 + (i % 4)
                        started = time.perf_counter()
                        result = session.query(theta, k)
                        latencies.append(time.perf_counter() - started)
                        if result.stats.partial:
                            partial += 1
                    stats = cluster.stats()["replica"]
                ms = np.asarray(latencies) * 1e3
                rows.append({
                    "replicas": R,
                    "kill_rate_per_s": rate,
                    "kills": killer.kills,
                    "queries": num_queries,
                    "p50_ms": round(float(np.percentile(ms, 50)), 2),
                    "p99_ms": round(float(np.percentile(ms, 99)), 2),
                    "max_ms": round(float(ms.max()), 2),
                    "availability": round(1.0 - partial / num_queries, 4),
                    "partial_answers": partial,
                    "spawns": stats["spawns"],
                    "restarts": stats["restarts"],
                })

    document = {
        "benchmark": "replica_failover",
        "dataset": f"random n={num_graphs} seed={seed}",
        "num_shards": num_shards,
        "thetas": list(thetas),
        "num_queries": num_queries,
        "rows": rows,
    }
    _JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    return document


def _print_summary(document):
    print(f"wrote {_JSON_PATH}")
    print(f"{'R':>3}{'kill/s':>8}{'kills':>7}{'p50 ms':>9}{'p99 ms':>9}"
          f"{'max ms':>9}{'avail':>8}{'restarts':>9}")
    for row in document["rows"]:
        print(f"{row['replicas']:>3}{row['kill_rate_per_s']:>8.1f}"
              f"{row['kills']:>7}{row['p50_ms']:>9.1f}{row['p99_ms']:>9.1f}"
              f"{row['max_ms']:>9.1f}{row['availability']:>8.3f}"
              f"{row['restarts']:>9}")


def test_replica_failover_benchmark():
    document = failover_benchmark(
        num_graphs=36, replicas=(1, 2), kill_rates=(0.0, 3.0),
        num_queries=16,
    )
    _print_summary(document)
    for row in document["rows"]:
        assert row["queries"] == 16
        # The degraded path answers everything; availability is a
        # fraction of *full* answers and can dip only when R == 1.
        if row["replicas"] >= 2:
            assert row["availability"] == 1.0, row


if __name__ == "__main__":
    outcome = failover_benchmark()
    _print_summary(outcome)

"""Fig. 2(a): DisC answer-set growth vs number of relevant objects."""

from conftest import run_once

from repro.bench.experiments import fig2a_disc_growth
from repro.bench.printers import print_and_save


def test_fig2a_disc_growth(benchmark, dud_ctx):
    result = run_once(benchmark, fig2a_disc_growth, dud_ctx)
    print_and_save(result)
    sizes = result.column("answer_size")
    relevants = result.column("relevant")
    # Paper claim: answer grows with |L_q| (near-linear, no budget control).
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]
    # Paper claim: compression ratio stays low (≈3 on DUD).
    assert max(result.column("compression_ratio")) < 10

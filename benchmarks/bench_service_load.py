"""Query-service load benchmark: throughput and tail latency vs offered
load, with and without shedding, plus the engine cache-lock guard.

Three measurements on one small in-process service:

* **load sweep (shedding on)** — clients offer requests at increasing
  rates against a bounded queue; admitted requests finish with bounded
  p99 latency while excess load is rejected with ``overloaded``.
* **load sweep (shedding off)** — the same offered load against an
  effectively unbounded queue; everything is admitted, and the p99 of
  the high-load rows shows the queueing delay shedding exists to avoid.
* **cache-lock overhead** — the ``DistanceEngine`` pair-cache lock added
  for service worker threads must cost < 5% on the single-threaded query
  workload (min-of-repeats A/B against a null lock, in the style of
  ``bench_obs_overhead``).

Runnable standalone (``python benchmarks/bench_service_load.py``) or
under pytest; both write ``BENCH_service_load.json`` at the repository
root.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from pathlib import Path

from repro.engine import core as engine_core
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.nbindex import NBIndex
from repro.service import Overloaded, QueryRequest, QueryService, ServiceConfig

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_service_load.json"

#: Allowed slowdown of the locked pair cache vs a null lock (serial path).
LOCK_BUDGET = 0.05


# ---------------------------------------------------------------------------
# Load sweep
# ---------------------------------------------------------------------------
def _build_service(db, *, max_queue):
    index = NBIndex.build(
        db, StarDistance(), num_vantage_points=6, branching=4, seed=7
    )
    config = ServiceConfig(max_concurrency=2, max_queue=max_queue)
    return QueryService(index, config=config).start()


def _offer_load(service, *, rate_per_s, duration_s, theta, k):
    """Open-loop arrivals at a fixed rate; returns latency + outcome data.

    A collector thread waits tickets in admission order so each latency is
    stamped when its response resolves, not when the offering loop ends
    (workers drain the queue FIFO, so admission order ≈ completion order).
    """
    import queue as queue_module

    latencies = []
    pending: queue_module.Queue = queue_module.Queue()
    done = object()

    def collect():
        while True:
            item = pending.get()
            if item is done:
                return
            submitted, ticket = item
            response = ticket.wait(60.0)
            if response is not None and response.get("ok"):
                latencies.append(time.perf_counter() - submitted)

    collector = threading.Thread(target=collect, daemon=True)
    collector.start()

    admitted = 0
    shed = 0
    interval = 1.0 / rate_per_s
    started = time.perf_counter()
    n = 0
    while True:
        now = time.perf_counter() - started
        if now >= duration_s:
            break
        target = n * interval
        if target > now:
            time.sleep(target - now)
        n += 1
        try:
            ticket = service.submit(QueryRequest(id=n, theta=theta, k=k))
        except Overloaded:
            shed += 1
        else:
            admitted += 1
            pending.put((time.perf_counter(), ticket))
    pending.put(done)
    collector.join(120.0)
    elapsed = time.perf_counter() - started
    return {
        "offered": n,
        "admitted": admitted,
        "shed": shed,
        "completed": len(latencies),
        "elapsed_s": elapsed,
        "latencies": sorted(latencies),
    }


def _pct(sorted_values, q):
    if not sorted_values:
        return None
    pos = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[pos]


def load_sweep(db, *, theta, k, rates, duration_s):
    rows = []
    for shedding in (True, False):
        # "Shedding off" = a queue deep enough to swallow the whole run.
        max_queue = 16 if shedding else 100_000
        for rate in rates:
            service = _build_service(db, max_queue=max_queue)
            # Warm the relevance/cache paths so rows compare steady states.
            service.call(QueryRequest(id=0, theta=theta, k=k))
            data = _offer_load(
                service, rate_per_s=rate, duration_s=duration_s,
                theta=theta, k=k,
            )
            service.drain()
            latencies = data.pop("latencies")
            rows.append({
                "shedding": shedding,
                "offered_per_s": rate,
                **data,
                "throughput_per_s": data["completed"] / data["elapsed_s"],
                "p50_ms": (_pct(latencies, 0.50) or 0) * 1e3,
                "p99_ms": (_pct(latencies, 0.99) or 0) * 1e3,
            })
    return rows


# ---------------------------------------------------------------------------
# Cache-lock overhead guard
# ---------------------------------------------------------------------------
class _NullLock:
    """A context manager that costs as close to nothing as Python allows."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


@contextlib.contextmanager
def _null_cache_lock(engine):
    saved = engine._cache_lock
    engine._cache_lock = _NullLock()
    try:
        yield
    finally:
        engine._cache_lock = saved


def lock_overhead(db, *, theta, k, rounds=80, repeats=6):
    index = NBIndex.build(
        db, StarDistance(), num_vantage_points=6, branching=4, seed=7
    )
    query_fn = quartile_relevance(db)
    engine = index.engine
    index.query(query_fn, theta, k)  # warm caches before timing

    def workload():
        started = time.perf_counter()
        for _ in range(rounds):
            index.query(query_fn, theta, k)
        return time.perf_counter() - started

    timings = {"null_lock": [], "locked": []}
    for _ in range(repeats):  # interleaved so drift hits both alike
        with _null_cache_lock(engine):
            timings["null_lock"].append(workload())
        timings["locked"].append(workload())
    best = {variant: min(values) for variant, values in timings.items()}
    overhead = best["locked"] / best["null_lock"] - 1.0
    return {
        "null_lock_s": best["null_lock"],
        "locked_s": best["locked"],
        "overhead": overhead,
        "budget": LOCK_BUDGET,
        "within_budget": overhead <= LOCK_BUDGET,
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def service_load_benchmark(
    num_graphs: int = 80,
    seed: int = 11,
    theta: float = 8.0,
    k: int = 3,
    rates=(50, 200, 1000),
    duration_s: float = 1.5,
):
    from repro.datasets import GENERATORS

    db = GENERATORS["dblp"](num_graphs=num_graphs, seed=seed)
    sweep = load_sweep(db, theta=theta, k=k, rates=rates,
                       duration_s=duration_s)
    lock = lock_overhead(db, theta=theta, k=k)
    document = {
        "benchmark": "service_load",
        "dataset": f"dblp n={num_graphs} seed={seed}",
        "theta": theta,
        "k": k,
        "duration_s": duration_s,
        "load_sweep": sweep,
        "cache_lock": lock,
    }
    _JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    return document


def _print_summary(document):
    print(f"wrote {_JSON_PATH}")
    header = (f"{'shed':<6}{'offered/s':>10}{'admitted':>10}{'shed#':>8}"
              f"{'thru/s':>9}{'p50 ms':>9}{'p99 ms':>9}")
    print(header)
    for row in document["load_sweep"]:
        print(f"{str(row['shedding']):<6}{row['offered_per_s']:>10}"
              f"{row['admitted']:>10}{row['shed']:>8}"
              f"{row['throughput_per_s']:>9.1f}"
              f"{row['p50_ms']:>9.1f}{row['p99_ms']:>9.1f}")
    lock = document["cache_lock"]
    print(f"cache lock overhead: {lock['overhead']:+.2%} "
          f"(budget {lock['budget']:.0%}) "
          f"{'OK' if lock['within_budget'] else 'EXCEEDED'}")


def test_service_load():
    document = service_load_benchmark(duration_s=0.8, rates=(20, 150))
    _print_summary(document)
    assert document["cache_lock"]["within_budget"], document["cache_lock"]
    for row in document["load_sweep"]:
        assert row["completed"] == row["admitted"], row  # every ticket answers


if __name__ == "__main__":
    outcome = service_load_benchmark()
    _print_summary(outcome)
    if not outcome["cache_lock"]["within_budget"]:
        raise SystemExit(
            f"pair-cache lock exceeds the {LOCK_BUDGET:.0%} budget: "
            f"{outcome['cache_lock']['overhead']:+.2%}"
        )

"""Ablations beyond the paper: VP count, branching factor, pi-hat ladder
density, and bound components (DESIGN.md §4)."""

from conftest import run_once

from repro.bench.printers import print_and_save
from repro.bench.scaling import (
    ablation_bounds,
    ablation_branching,
    ablation_ladder_density,
    ablation_vp_count,
)


def test_ablation_vp_count(benchmark, dud_ctx):
    result = run_once(benchmark, ablation_vp_count, dud_ctx, (2, 8, 20))
    print_and_save(result)
    fprs = result.column("observed_fpr")
    # More vantage points → tighter candidate sets (monotone FPR).
    assert fprs == sorted(fprs, reverse=True)


def test_ablation_branching(benchmark, dud_ctx):
    result = run_once(benchmark, ablation_branching, dud_ctx, (3, 8, 20))
    print_and_save(result)
    heights = result.column("tree_height")
    assert heights == sorted(heights, reverse=True)  # bigger b → flatter


def test_ablation_ladder_density(benchmark, dud_ctx):
    result = run_once(benchmark, ablation_ladder_density, dud_ctx, (1, 3, 10))
    print_and_save(result)
    assert len(result.rows) == 3


def test_ablation_bounds(benchmark, dud_ctx):
    result = run_once(benchmark, ablation_bounds, dud_ctx)
    print_and_save(result)
    pis = result.column("pi")
    # Every variant returns an equally good greedy answer.
    assert max(pis) - min(pis) < 1e-9


def test_ablation_insert_degradation(benchmark):
    from repro.bench.scaling import ablation_insert_degradation

    result = run_once(benchmark, ablation_insert_degradation, "dud", 150, 40)
    print_and_save(result)
    by_name = {row["index"]: row for row in result.rows}
    # Both indexes produce valid greedy answers of comparable quality (tie
    # resolution may differ between trees, so exact equality is not
    # guaranteed), and incremental maintenance beats rebuilding.
    assert abs(by_name["incremental"]["pi"] - by_name["rebuilt"]["pi"]) < 0.15
    assert (
        by_name["incremental"]["maintenance_s"]
        < by_name["rebuilt"]["maintenance_s"]
    )

"""Figs. 5(i-k): query time vs theta for every engine (+ matrix inset on DUD)."""

import pytest
from conftest import run_once

from repro.bench.printers import print_and_save
from repro.bench.scaling import fig5ik_time_vs_theta


@pytest.mark.parametrize("ctx_name,include_matrix", [
    ("dud", True),      # Fig. 5(i), with the distance-matrix inset
    ("dblp", False),    # Fig. 5(j)
    ("amazon", False),  # Fig. 5(k)
])
def test_fig5ik_time_vs_theta(benchmark, ctx_name, include_matrix, request):
    ctx = request.getfixturevalue(f"{ctx_name}_ctx")
    result = run_once(
        benchmark, fig5ik_time_vs_theta, ctx,
        (0.6, 1.0, 1.8), 10, include_matrix,
    )
    print_and_save(result)
    # Paper claim: NB-Index beats the NN-index engines across theta.
    for row in result.rows:
        assert row["nbindex_s"] <= row["ctree_greedy_s"] * 2.0
    nb_total = sum(r["nbindex_s"] for r in result.rows)
    ctree_total = sum(r["ctree_greedy_s"] for r in result.rows)
    assert nb_total < ctree_total

"""Price the filter cascade and the ε-approximate mode (PR 10).

Two measurements, written to ``BENCH_cascade.json``:

* **Call reduction** — exact-distance evaluations over fresh engines for
  identical threshold-query workloads under (a) no filtering, (b) the
  legacy vantage-only pipeline, (c) the full structural cascade
  (`label_size → assignment → vantage`), with per-stage prune rates.
  The acceptance gate is ≥ 2× fewer exact calls with the cascade enabled
  (vs the unfiltered pipeline) at n ≥ 5k.
* **π-loss vs speedup** — full queries across ε ∈ {0, 0.01, 0.05, 0.1}
  on freshly built indexes (cold pair caches); for every approximate
  answer the *true* π is recomputed with exact coverage at θ, and the
  measured relative π-loss must stay ≤ ε.

Run standalone for the committed document (n = 5000), or under pytest
for a fast smoke at a small n::

    python benchmarks/bench_cascade.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.cascade import CascadeConfig, FilterCascade
from repro.datasets import GENERATORS
from repro.engine import DistanceEngine
from repro.ged import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_cascade.json"

#: The structural cascade the call-reduction gate measures.
FULL = ("label_size", "assignment", "vantage")
EPSILONS = (0.0, 0.01, 0.05, 0.1)


def _fresh_engine(db, embedding):
    engine = DistanceEngine(StarDistance(), graphs=db.graphs)
    engine.attach_embedding(embedding)
    return engine


def _call_reduction(db, embedding, theta, sources):
    """Exact evaluations for one threshold-query workload per pipeline."""
    targets = list(range(len(db)))
    rows = {}
    runtimes = {}
    for name, stages in (
        ("unfiltered", ()),
        ("vantage", ("vantage",)),
        ("cascade", FULL),
    ):
        engine = _fresh_engine(db, embedding)
        runtime = FilterCascade(CascadeConfig(stages=stages))
        started = time.perf_counter()
        for gid in sources:
            engine.within(gid, targets, theta, cascade=runtime)
        rows[name] = {
            "exact_calls": int(engine.evaluations),
            "seconds": round(time.perf_counter() - started, 3),
        }
        runtimes[name] = runtime
    snapshot = runtimes["cascade"].snapshot()
    candidates = len(sources) * len(db)
    stages = {
        name: {
            "evals": entry["evals"],
            "prunes": entry["prunes"],
            "accepts": entry["accepts"],
            "prune_rate": round(entry["prunes"] / max(entry["evals"], 1), 4),
        }
        for name, entry in snapshot.items()
    }
    return {
        "theta": theta,
        "queries": len(sources),
        "candidates": candidates,
        "pipelines": rows,
        "stages": stages,
        "reduction_vs_unfiltered": round(
            rows["unfiltered"]["exact_calls"]
            / max(rows["cascade"]["exact_calls"], 1), 2,
        ),
        "reduction_vs_vantage": round(
            rows["vantage"]["exact_calls"]
            / max(rows["cascade"]["exact_calls"], 1), 2,
        ),
    }


def _true_pi(engine, answer, relevant, theta):
    """Exact coverage of an answer at θ — the honest π of an ε-relaxed
    result (its *reported* coverage may undercount boundary members)."""
    covered = set()
    for gid in answer:
        mask = engine.within(int(gid), relevant, theta)
        covered.update(r for r, ok in zip(relevant, mask) if ok)
    return len(covered) / max(len(relevant), 1)


def _epsilon_sweep(db, build_kwargs, theta, k):
    """Cold-cache queries per ε; true-π loss against the exact answer."""
    query_fn = quartile_relevance(db)
    relevant = [int(g) for g in np.flatnonzero(query_fn.mask(db.features))]
    rows = []
    exact_pi = None
    for epsilon in EPSILONS:
        index = NBIndex.build(db, StarDistance(), **build_kwargs)
        calls_before = index.engine.evaluations
        started = time.perf_counter()
        result = index.query(
            query_fn, theta, k,
            cascade=CascadeConfig(stages=FULL, epsilon=epsilon),
        )
        seconds = time.perf_counter() - started
        pi_true = _true_pi(index.engine, result.answer, relevant, theta)
        if epsilon == 0.0:
            exact_pi = pi_true
        loss = max(0.0, (exact_pi - pi_true) / max(exact_pi, 1e-12))
        rows.append({
            "epsilon": epsilon,
            "approximate": bool(result.stats.approximate),
            "pi_reported": round(float(result.pi), 4),
            "pi_true": round(pi_true, 4),
            "pi_loss": round(loss, 4),
            "query_seconds": round(seconds, 3),
            "exact_calls": int(index.engine.evaluations - calls_before),
            "speedup_vs_exact": round(
                rows[0]["query_seconds"] / max(seconds, 1e-9), 2,
            ) if rows else 1.0,
        })
    return {"theta": theta, "k": k, "relevant": len(relevant), "rows": rows}


def cascade_benchmark(
    num_graphs: int = 5000,
    seed: int = 11,
    theta: float = 8.0,
    k: int = 10,
    num_vantage_points: int = 6,
    branching: int = 8,
    num_sources: int = 20,
) -> dict:
    db = GENERATORS["dud"](num_graphs=num_graphs, seed=seed)
    build_kwargs = dict(
        num_vantage_points=num_vantage_points, branching=branching, seed=7,
    )
    started = time.perf_counter()
    index = NBIndex.build(db, StarDistance(), **build_kwargs)
    build_s = time.perf_counter() - started
    step = max(1, num_graphs // num_sources)
    sources = list(range(0, num_graphs, step))[:num_sources]
    return {
        "benchmark": "cascade",
        "dataset": f"dud n={num_graphs} seed={seed}",
        "build_seconds": round(build_s, 2),
        "cascade_stages": list(FULL),
        "call_reduction": _call_reduction(db, index.embedding, theta, sources),
        "epsilon_sweep": _epsilon_sweep(db, build_kwargs, theta, k),
    }


def check_document(
    document: dict, *, min_reduction: float = 2.0, check_pi_loss: bool = True,
) -> list[str]:
    """The acceptance gates — shared with ``scripts/check_bench_delta.py``.

    ``check_pi_loss`` only makes sense at scale: the star metric moves
    in 0.5 steps, so on tiny smoke databases a single boundary shell
    can carry more than ε of the coverage mass (the committed n ≥ 5k
    document must pass it; the pytest smoke skips it).
    """
    problems = []
    reduction = document["call_reduction"]["reduction_vs_unfiltered"]
    if reduction < min_reduction:
        problems.append(
            f"cascade reduced exact calls only {reduction:.2f}x "
            f"(gate: >= {min_reduction:.1f}x)"
        )
    for row in document["epsilon_sweep"]["rows"]:
        if check_pi_loss and row["pi_loss"] > row["epsilon"] + 1e-9:
            problems.append(
                f"epsilon={row['epsilon']}: measured pi-loss "
                f"{row['pi_loss']} exceeds epsilon"
            )
        if row["epsilon"] == 0.0 and row["pi_loss"] > 0.0:
            problems.append("epsilon=0 run lost coverage")
        if row["epsilon"] == 0.0 and row["approximate"]:
            problems.append("epsilon=0 run flagged approximate")
        if row["epsilon"] > 0.0 and not row["approximate"]:
            problems.append(
                f"epsilon={row['epsilon']} run not flagged approximate"
            )
    stages = document["call_reduction"]["stages"]
    for name, entry in stages.items():
        if entry["prunes"] > entry["evals"]:
            problems.append(f"stage {name}: prunes exceed evals")
    return problems


def _print_summary(document: dict) -> None:
    reduction = document["call_reduction"]
    print(f"cascade benchmark — {document['dataset']} "
          f"(build {document['build_seconds']}s)")
    print(f"  call reduction at theta={reduction['theta']} over "
          f"{reduction['queries']} threshold queries:")
    for name, row in reduction["pipelines"].items():
        print(f"    {name:<11} exact_calls={row['exact_calls']:>8} "
              f"({row['seconds']}s)")
    print(f"    => {reduction['reduction_vs_unfiltered']}x fewer than "
          f"unfiltered, {reduction['reduction_vs_vantage']}x vs vantage-only")
    print("  per-stage prune rates:")
    for name, entry in reduction["stages"].items():
        print(f"    {name:<11} evals={entry['evals']:>8} "
              f"prunes={entry['prunes']:>7} rate={entry['prune_rate']:.2%}")
    sweep = document["epsilon_sweep"]
    print(f"  epsilon sweep (theta={sweep['theta']}, k={sweep['k']}, "
          f"{sweep['relevant']} relevant):")
    print(f"    {'eps':>6}{'pi_true':>9}{'loss':>8}{'calls':>9}{'sec':>7}")
    for row in sweep["rows"]:
        print(f"    {row['epsilon']:>6}{row['pi_true']:>9.4f}"
              f"{row['pi_loss']:>8.4f}{row['exact_calls']:>9}"
              f"{row['query_seconds']:>7.2f}")


def test_cascade_benchmark():
    document = cascade_benchmark(
        num_graphs=120, theta=6.0, k=4, num_sources=8,
    )
    _print_summary(document)
    # The >=2x reduction and pi-loss<=eps gates are only claimed at
    # n >= 5k; at smoke size just require the cascade to never *add*
    # exact calls and the epsilon/approximate bookkeeping to hold.
    assert check_document(document, min_reduction=1.0, check_pi_loss=False) == []
    pipelines = document["call_reduction"]["pipelines"]
    assert pipelines["cascade"]["exact_calls"] <= pipelines["unfiltered"]["exact_calls"]


if __name__ == "__main__":
    outcome = cascade_benchmark()
    _JSON_PATH.write_text(json.dumps(outcome, indent=2) + "\n")
    print(f"wrote {_JSON_PATH}")
    _print_summary(outcome)
    problems = check_document(outcome)
    if problems:
        raise SystemExit(f"cascade benchmark gates failed: {problems}")

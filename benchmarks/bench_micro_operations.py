"""Micro-benchmarks of the hot operations (multi-round, statistical).

Unlike the experiment benchmarks (one-shot parameter sweeps), these measure
single operations with pytest-benchmark's full round machinery — the
numbers to watch when optimizing the inner loops.
"""

import numpy as np
import pytest

from repro.ged import ExactGED, StarDistance


@pytest.fixture(scope="module")
def pair(dud_ctx):
    return dud_ctx.database[0], dud_ctx.database[1]


def test_star_distance_call(benchmark, pair):
    # Fresh instance per round set-up would hide the profile cache that
    # real engines enjoy; measure the cached steady state explicitly.
    distance = StarDistance()
    distance(*pair)  # warm the per-graph profiles
    benchmark(distance, *pair)


def test_star_distance_cold_profiles(benchmark, pair):
    def cold():
        StarDistance()(*pair)

    benchmark(cold)


def test_exact_ged_small_graphs(benchmark):
    rng = np.random.default_rng(0)
    from tests.conftest import random_connected_graph

    a = random_connected_graph(rng, 5)
    b = random_connected_graph(rng, 5)
    benchmark(ExactGED(), a, b)


def test_vantage_candidates(benchmark, dud_ctx):
    embedding = dud_ctx.nbindex.embedding
    benchmark(embedding.candidates, 0, dud_ctx.theta)


def test_pi_hat_column(benchmark, dud_ctx):
    q = dud_ctx.relevance()
    session = dud_ctx.nbindex.session(q)
    ladder_index = dud_ctx.nbindex.ladder.index_for(dud_ctx.theta)

    def compute():
        session._pi_hat_columns.clear()
        return session.pi_hat_column(ladder_index)

    benchmark(compute)


def test_full_query(benchmark, dud_ctx):
    q = dud_ctx.relevance()
    index = dud_ctx.nbindex
    benchmark(index.query, q, dud_ctx.theta, 10)

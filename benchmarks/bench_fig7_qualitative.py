"""Fig. 7 / Sec. 8.4: traditional vs representative top-5 on the molecular
dataset (single-target AChE-style query)."""

from conftest import run_once

from repro.bench.experiments import fig7_qualitative
from repro.bench.printers import print_and_save


def test_fig7_qualitative(benchmark):
    result = run_once(benchmark, fig7_qualitative)
    print_and_save(result)
    by_engine = {row["engine"]: row for row in result.rows}
    top = by_engine["traditional_topk"]
    rep = by_engine["representative"]
    # Paper claims: the representative answer is structurally more diverse
    # and covers more of the relevant set.
    assert rep["mean_pairwise_dist"] >= top["mean_pairwise_dist"]
    assert rep["pi"] >= top["pi"]
    assert rep["CR"] >= top["CR"]

"""Figs. 5(c-e): distance histograms and their Gaussian moments."""

from conftest import run_once

from repro.bench.experiments import fig5ce_distance_hist
from repro.bench.printers import print_and_save


def test_fig5ce_distance_hist(benchmark, all_contexts):
    result = run_once(benchmark, fig5ce_distance_hist, all_contexts)
    print_and_save(result)
    by_dataset = {}
    for row in result.rows:
        by_dataset[row["dataset"]] = (row["mu"], row["sigma"])
    # Paper geometry: Amazon's distances are relatively more dispersed than
    # DBLP's (the reason its theta is an order of magnitude larger).
    dblp_cv = by_dataset["dblp"][1] / by_dataset["dblp"][0]
    amazon_cv = by_dataset["amazon"][1] / by_dataset["amazon"][0]
    assert amazon_cv > dblp_cv

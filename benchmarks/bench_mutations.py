"""Mutation benchmark: memtable throughput, query cost vs memtable size,
and online compaction vs the full-rebuild baseline.

The delta layer's pitch is "mutate without rebuilding" — this benchmark
prices it.  For a single-artifact and a 4-shard base it measures:

* **mutation throughput** — inserts (and journaled inserts, which pay an
  fsync each) plus tombstone deletes per second into the memtable;
* **query latency vs memtable size** — the memtable is scanned exactly,
  so every un-compacted insert adds distance work to each query; each
  point is compared against the from-scratch rebuild baseline (build
  time + query time) *and* checked bit-identical to it — a row with
  ``identical: false`` is a correctness bug, not a slow run;
* **compaction** — online ``compact()`` wall-clock at the final memtable
  size (for the sharded base: how many shards were reused), the latency
  the post-compaction query returns to, and the rebuild time it avoided.

Runnable standalone (``python benchmarks/bench_mutations.py``) or under
pytest; both write ``BENCH_mutations.json`` at the repository root.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.delta import MutableIndex, MutationJournal
from repro.engine import DistanceEngine
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.nbindex import NBIndex
from repro.index.pivec import choose_thresholds
from repro.shard import ShardedIndex, build_shards

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_mutations.json"

BUILD = dict(num_vantage_points=10, branching=8)


def _identical(got, want) -> bool:
    return (
        got.answer == want.answer
        and got.gains == want.gains
        and got.covered == want.covered
    )


def _teardown(index):
    if hasattr(index, "invalidate_pools"):
        index.invalidate_pools()
    elif getattr(index, "engine", None) is not None:
        index.engine.invalidate_pool()


def _time_query(index, query_fn, theta, k, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = index.query(query_fn, theta, k)
        best = min(best, time.perf_counter() - started)
    return best, result


def _rebuild_oracle(mutable, distance, ladder, seed):
    """From-scratch build over the mutated content — the baseline a
    mutation-free deployment would pay instead of the memtable."""
    snapshot = mutable.database.subset(range(len(mutable.database)))
    for gid in mutable.database.deleted:
        snapshot.mark_deleted(gid)
    started = time.perf_counter()
    oracle = NBIndex.build(
        snapshot, distance, thresholds=ladder, seed=seed, **BUILD
    )
    return oracle, time.perf_counter() - started


def _journaled_insert_rate(db, base, distance, ladder, seed, tmp, count):
    """Inserts per second when every mutation pays its fsync."""
    live = db.subset(range(base))
    journal = MutationJournal(Path(tmp) / "bench.journal")
    index = NBIndex.build(
        live, distance, thresholds=ladder, seed=seed, **BUILD
    )
    mutable = MutableIndex(live, index, distance=distance, journal=journal)
    started = time.perf_counter()
    for gid in range(base, base + count):
        mutable.insert(db[gid], db.features[gid])
    seconds = time.perf_counter() - started
    mutable.close()
    return count / max(seconds, 1e-9)


def mutation_benchmark(
    num_graphs: int = 120,
    base: int = 90,
    seed: int = 13,
    k: int = 8,
    batch: int = 10,
    repeats: int = 3,
    layouts=("single", "sharded"),
):
    from repro.datasets import GENERATORS

    db = GENERATORS["dud"](num_graphs=num_graphs, seed=seed)
    distance = StarDistance()
    engine = DistanceEngine(distance, graphs=db.graphs)
    # One ladder over the FULL content, so every rebuild point and both
    # layouts answer the same rung and no row is favored.
    ladder = choose_thresholds(
        db.graphs, engine, count=10, num_pairs=min(1000, num_graphs * 4),
        rng=np.random.default_rng(seed), engine=engine,
    )
    theta = ladder.values[4]
    query_fn = quartile_relevance(db)
    num_batches = (num_graphs - base) // batch

    rows = []
    for layout in layouts:
        with tempfile.TemporaryDirectory() as tmp:
            live = db.subset(range(base))
            build_started = time.perf_counter()
            if layout == "single":
                base_index = NBIndex.build(
                    live, distance, thresholds=ladder, seed=seed, **BUILD
                )
                mutable = MutableIndex(
                    live, base_index, distance=distance, seed=seed
                )
            else:
                manifest_path = build_shards(
                    live, distance, num_shards=4,
                    out_dir=Path(tmp) / "bundle", thresholds=ladder,
                    seed=seed, **BUILD,
                )
                base_index = ShardedIndex.load(manifest_path, live, distance)
                mutable = MutableIndex(
                    live, base_index, distance=distance,
                    manifest_path=manifest_path, seed=seed,
                )
            base_build_s = time.perf_counter() - build_started

            points = []
            insert_rates = []
            for point in range(num_batches + 1):
                if point:  # batch of inserts + a couple of tombstones
                    start_gid = base + (point - 1) * batch
                    started = time.perf_counter()
                    for gid in range(start_gid, start_gid + batch):
                        mutable.insert(db[gid], db.features[gid])
                    insert_rates.append(
                        batch / max(time.perf_counter() - started, 1e-9)
                    )
                    mutable.delete(2 * point)
                seconds, result = _time_query(
                    mutable, query_fn, theta, k, repeats
                )
                oracle, rebuild_s = _rebuild_oracle(
                    mutable, distance, ladder, seed
                )
                rebuild_q_s, oracle_result = _time_query(
                    oracle, query_fn, theta, k, repeats
                )
                _teardown(oracle)
                points.append({
                    "memtable": mutable.memtable_size,
                    "tombstones": mutable.tombstones,
                    "query_ms": round(seconds * 1e3, 3),
                    "rebuild_s": round(rebuild_s, 3),
                    "rebuild_query_ms": round(rebuild_q_s * 1e3, 3),
                    "query_slowdown_x": round(
                        seconds / max(rebuild_q_s, 1e-9), 2
                    ),
                    "identical": _identical(result, oracle_result),
                })

            compact_started = time.perf_counter()
            report = mutable.compact()
            compact_s = time.perf_counter() - compact_started
            compacted_q_s, compacted = _time_query(
                mutable, query_fn, theta, k, repeats
            )
            final_oracle, _ = _rebuild_oracle(mutable, distance, ladder, seed)
            _, final_expected = _time_query(
                final_oracle, query_fn, theta, k, 1
            )
            _teardown(final_oracle)

            rows.append({
                "layout": layout,
                "base_graphs": base,
                "base_build_s": round(base_build_s, 3),
                "insert_per_s": round(float(np.mean(insert_rates)), 1),
                "journaled_insert_per_s": round(_journaled_insert_rate(
                    db, base, distance, ladder, seed, tmp, batch
                ), 1),
                "points": points,
                "compact_s": round(compact_s, 3),
                "compact_absorbed": report["absorbed"],
                "compact_rebuilt_shards": report["rebuilt_shards"],
                "compact_reused_shards": report["reused_shards"],
                "post_compact_query_ms": round(compacted_q_s * 1e3, 3),
                "post_compact_identical": _identical(
                    compacted, final_expected
                ),
            })
            mutable.close()

    document = {
        "benchmark": "mutations",
        "dataset": f"dud n={num_graphs} seed={seed}",
        "k": k,
        "theta": round(float(theta), 3),
        "ladder": [round(float(v), 3) for v in ladder.values],
        "rows": rows,
    }
    _JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    return document


def _print_summary(document):
    print(f"wrote {_JSON_PATH}")
    for row in document["rows"]:
        print(f"{row['layout']}: base build {row['base_build_s']:.2f}s, "
              f"{row['insert_per_s']:.0f} inserts/s "
              f"({row['journaled_insert_per_s']:.0f} journaled), "
              f"compact {row['compact_s']:.2f}s "
              f"(reused {row['compact_reused_shards']} shards)")
        header = (f"  {'memtable':>9}{'tomb':>6}{'q ms':>9}"
                  f"{'rebuild s':>11}{'rebuild q ms':>14}{'slow x':>8}"
                  f"{'ok':>4}")
        print(header)
        for p in row["points"]:
            print(f"  {p['memtable']:>9}{p['tombstones']:>6}"
                  f"{p['query_ms']:>9.1f}{p['rebuild_s']:>11.2f}"
                  f"{p['rebuild_query_ms']:>14.1f}"
                  f"{p['query_slowdown_x']:>8.2f}"
                  f"{'y' if p['identical'] else 'N':>4}")


def test_mutations():
    document = mutation_benchmark(
        num_graphs=48, base=36, batch=6, repeats=2
    )
    _print_summary(document)
    for row in document["rows"]:
        assert row["post_compact_identical"], row
        for p in row["points"]:
            assert p["identical"], (row["layout"], p)


if __name__ == "__main__":
    outcome = mutation_benchmark()
    _print_summary(outcome)
    bad = [
        (row["layout"], p["memtable"])
        for row in outcome["rows"]
        for p in row["points"]
        if not p["identical"]
    ] + [
        (row["layout"], "post-compact")
        for row in outcome["rows"]
        if not row["post_compact_identical"]
    ]
    if bad:
        raise SystemExit(f"mutable answers diverged from rebuild: {bad}")

"""Hot-path benchmark: packed-bitset coverage kernel vs set-based reference.

Runs the three-layer sweep of :mod:`repro.bench.hotpath`:

* **end-to-end** — Algorithm 1 over Gaussian vector databases with a
  vectorized range-query backend, set-based reference vs bitset engine on
  identical inputs;
* **engine identity** — NB-Index (S=1) and sharded coordinator (S=4)
  answer the same (θ, k) query; every row is checked bit-for-bit (ids,
  gains, ordering, coverage) against the reference;
* **kernels** — median latency of each bitset primitive at the largest
  universe, the baselines ``scripts/check_bench_delta.py`` guards.

Runnable standalone (``python benchmarks/bench_bitset_hotpath.py``),
writing ``BENCH_bitset_hotpath.json`` at the repository root, or under
pytest (small sizes, temporary output, identity assertions only — the
committed document stays untouched).
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.hotpath import (
    check_document,
    format_summary,
    run_hotpath,
    write_document,
)

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_bitset_hotpath.json"


def test_bitset_hotpath(tmp_path):
    document = run_hotpath(
        sizes=(300, 600), k=8, repeats=1, include_engines=True,
    )
    write_document(document, tmp_path / "BENCH_bitset_hotpath.json")
    print(format_summary(document))
    assert check_document(document) == []


if __name__ == "__main__":
    outcome = run_hotpath()
    write_document(outcome, _JSON_PATH)
    print(f"wrote {_JSON_PATH}")
    print(format_summary(outcome))
    problems = check_document(outcome)
    if problems:
        raise SystemExit(f"bitset hot path diverged from reference: {problems}")

"""Figs. 5(a-b): cumulative pairwise-distance distributions per dataset."""

from conftest import run_once

from repro.bench.experiments import fig5ab_distance_cdf
from repro.bench.printers import print_and_save


def test_fig5ab_distance_cdf(benchmark, all_contexts):
    result = run_once(benchmark, fig5ab_distance_cdf, all_contexts)
    print_and_save(result)
    for ctx in all_contexts:
        series = [r for r in result.rows if r["dataset"] == ctx.name]
        cdf = [r["cdf"] for r in series]
        # CDF is monotone and reaches 1 at the sampled diameter.
        assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == 1.0

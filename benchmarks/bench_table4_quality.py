"""Table 4: compression ratios and representative power, REP vs DIV vs DisC."""

from conftest import run_once

from repro.bench.experiments import table4_quality
from repro.bench.printers import print_and_save


def test_table4_quality(benchmark, all_contexts):
    result = run_once(benchmark, table4_quality, all_contexts, (5, 10, 25))
    print_and_save(result)
    for row in result.rows:
        if row["REP_CR"] is None:
            continue  # the DisC summary row
        # Paper claim: REP dominates DIV(θ) and DIV(2θ) in pi.  CR is only
        # comparable between equal-size answers (DIV(2θ) may return fewer
        # than k answers, which inflates covered/|A|), so pi carries the
        # quality claim here.
        assert row["REP_pi"] >= row["DIV(t)_pi"] - 1e-9
        assert row["REP_pi"] >= row["DIV(2t)_pi"] - 1e-9

"""Figs. 5(f-h): observed vantage FPR vs the Eq. 11 upper bound."""

import pytest
from conftest import run_once

from repro.bench.experiments import fig5fh_fpr
from repro.bench.printers import print_and_save


@pytest.mark.parametrize("ctx_name", ["dud", "dblp", "amazon"])
def test_fig5fh_fpr(benchmark, ctx_name, request):
    ctx = request.getfixturevalue(f"{ctx_name}_ctx")
    result = run_once(benchmark, fig5fh_fpr, ctx)
    print_and_save(result)
    for row in result.rows:
        assert 0.0 <= row["observed_fpr"] <= 1.0
        assert 0.0 <= row["fpr_upper_bound"] <= 1.0
    # Paper claim: in the realistic theta zone the FPR stays small.
    at_theta = [r for r in result.rows if abs(r["theta"] - ctx.theta) < 1e-9]
    assert at_theta[0]["observed_fpr"] <= 0.5

"""Figs. 5(l)/6(a): sensitivity to the gap between theta and the nearest
indexed pi-hat threshold."""

import pytest
from conftest import run_once

from repro.bench.printers import print_and_save
from repro.bench.scaling import fig5l6a_threshold_gap


@pytest.mark.parametrize("ctx_name", ["dud", "amazon"])
def test_fig5l6a_threshold_gap(benchmark, ctx_name, request):
    ctx = request.getfixturevalue(f"{ctx_name}_ctx")
    result = run_once(
        benchmark, fig5l6a_threshold_gap, ctx, (0.0, 0.5, 1.5), 10
    )
    print_and_save(result)
    times = result.column("query_s")
    # Paper claim: even a large gap costs only modest extra time (bounded
    # degradation, not blow-up).
    assert max(times) < max(times[0], 0.05) * 50

"""Serial vs batch-engine wall time for index build and greedy queries.

Compares three pipelines on the same ≥500-graph synthetic database:

* ``seed-serial`` — the historical per-pair path: counting/caching
  wrappers, one Python-level ``StarDistance`` call per pair, per-pair
  candidate verification at query time;
* ``engine-1w`` — the batch distance engine, serial (no process pool):
  vectorized star batches + Lipschitz prefiltering;
* ``engine-4w`` — the same engine fanning batches over 4 worker
  processes.

Answers must be byte-identical across all three; the engine's speedup
comes from algorithmic batching (shared token registries, one sparse
overlap matmul per batch, reduced assignment problems) with the pool
scaling it further on multi-core hardware.

Runnable standalone (``python benchmarks/bench_parallel_engine.py``) or
under pytest-benchmark; both write ``BENCH_parallel_engine.json`` at the
repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.greedy import baseline_greedy
from repro.engine import DistanceEngine
from repro.ged.metric import CachingDistance, CountingDistance
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.nbindex import NBIndex
from repro.index.nbtree import NBTree
from repro.index.pivec import choose_thresholds
from repro.index.vantage import VantageEmbedding, select_vantage_points
from repro.utils.rng import ensure_rng

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_engine.json"


def _seed_style_build(database, distance, num_vantage_points, branching, rng):
    """The pre-engine build pipeline: per-pair calls through the wrappers."""
    rng = ensure_rng(rng)
    counting = CountingDistance(distance)
    cached = CachingDistance(counting)
    started = time.perf_counter()
    vp_count = min(num_vantage_points, len(database))
    vp_indices = select_vantage_points(
        database.graphs, vp_count, rng=rng, strategy="random", distance=cached
    )
    embedding = VantageEmbedding(database.graphs, vp_indices, cached)
    thresholds = choose_thresholds(
        database.graphs, cached, count=10,
        num_pairs=min(1000, len(database) * 4), rng=rng,
    )
    tree = NBTree(
        database.graphs, cached, embedding, branching=branching, rng=rng
    )
    build_seconds = time.perf_counter() - started
    return NBIndex(
        database, cached, embedding=embedding, tree=tree, ladder=thresholds,
        counting=counting, build_seconds=build_seconds,
    )


def parallel_engine_benchmark(
    dataset: str = "dblp",
    num_graphs: int = 500,
    seed: int = 7,
    k: int = 10,
    num_vantage_points: int = 20,
    branching: int = 8,
):
    from repro.analysis import sample_distances
    from repro.bench.harness import ExperimentResult
    from repro.datasets import GENERATORS

    database = GENERATORS[dataset](num_graphs=num_graphs, seed=seed)
    query_fn = quartile_relevance(database)
    with DistanceEngine(StarDistance(), workers=1) as calibration:
        theta = sample_distances(
            database, calibration, num_pairs=min(1000, num_graphs * 2),
            rng=seed, engine=calibration,
        ).quantile(0.05)

    variants = []

    # -- seed-style serial ------------------------------------------------
    started = time.perf_counter()
    serial_index = _seed_style_build(
        database, StarDistance(), num_vantage_points, branching, seed
    )
    serial_build = time.perf_counter() - started
    started = time.perf_counter()
    serial_result = serial_index.query(query_fn, theta, k)
    serial_query = time.perf_counter() - started
    variants.append({
        "variant": "seed-serial",
        "build_s": serial_build,
        "build_distance_calls": serial_index.stats()["distance_calls"],
        "query_s": serial_query,
        "query_distance_calls": serial_result.stats.distance_calls,
        "build_speedup": 1.0,
    })

    # -- engine, serial and 4 workers ------------------------------------
    engine_results = {}
    for workers in (1, 4):
        started = time.perf_counter()
        index = NBIndex.build(
            database, StarDistance(),
            num_vantage_points=num_vantage_points, branching=branching,
            seed=seed, workers=workers,
        )
        build = time.perf_counter() - started
        started = time.perf_counter()
        result = index.query(query_fn, theta, k)
        query = time.perf_counter() - started
        engine_results[workers] = (index, result)
        variants.append({
            "variant": f"engine-{workers}w",
            "build_s": build,
            "build_distance_calls": index.stats()["distance_calls"],
            "query_s": query,
            "query_distance_calls": result.stats.distance_calls,
            "build_speedup": serial_build / build,
        })
        index.engine.close()

    # -- greedy (no index) serial vs engine ------------------------------
    started = time.perf_counter()
    greedy_serial = baseline_greedy(database, StarDistance(), query_fn, theta, k)
    greedy_serial_s = time.perf_counter() - started
    with DistanceEngine(StarDistance(), workers=4, graphs=database.graphs) as eng:
        started = time.perf_counter()
        greedy_engine = baseline_greedy(
            database, StarDistance(), query_fn, theta, k, engine=eng
        )
        greedy_engine_s = time.perf_counter() - started
    variants.append({
        "variant": "greedy-serial",
        "build_s": None, "build_distance_calls": None,
        "query_s": greedy_serial_s,
        "query_distance_calls": greedy_serial.stats.distance_calls,
        "build_speedup": None,
    })
    variants.append({
        "variant": "greedy-engine-4w",
        "build_s": None, "build_distance_calls": None,
        "query_s": greedy_engine_s,
        "query_distance_calls": greedy_engine.stats.distance_calls,
        "build_speedup": None,
    })

    # -- byte-identical answers: engine vs its serial counterpart ---------
    # (index results across worker counts, and greedy with/without the
    # engine; index greedy vs no-index greedy may break gain ties
    # differently — those are different algorithms, not compared here)
    def _same(a, b):
        return a.answer == b.answer and a.gains == b.gains and a.covered == b.covered

    identical = (
        _same(engine_results[1][1], serial_result)
        and _same(engine_results[4][1], serial_result)
        and _same(greedy_engine, greedy_serial)
    )
    import numpy as np

    identical = identical and np.array_equal(
        engine_results[1][0].embedding.coords,
        engine_results[4][0].embedding.coords,
    ) and np.array_equal(
        serial_index.embedding.coords, engine_results[1][0].embedding.coords
    )

    payload = {
        "dataset": dataset,
        "num_graphs": num_graphs,
        "seed": seed,
        "theta": float(theta),
        "k": k,
        "num_vantage_points": num_vantage_points,
        "branching": branching,
        "identical_results": bool(identical),
        "variants": variants,
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    for row in variants:
        row["identical"] = identical
    return ExperimentResult(
        name="parallel_engine",
        columns=["variant", "build_s", "build_distance_calls", "query_s",
                 "query_distance_calls", "build_speedup", "identical"],
        rows=variants,
        notes=(
            f"{dataset} n={num_graphs} theta={theta:.2f} k={k}; "
            f"speedups vs the seed per-pair build; wrote {_JSON_PATH.name}"
        ),
    )


def test_parallel_engine(benchmark):
    from conftest import run_once

    from repro.bench.printers import print_and_save

    result = run_once(benchmark, parallel_engine_benchmark)
    print_and_save(result)
    assert all(row["identical"] for row in result.rows)
    by_name = {row["variant"]: row for row in result.rows}
    assert by_name["engine-4w"]["build_speedup"] >= 2.0
    assert by_name["engine-1w"]["build_speedup"] >= 2.0


if __name__ == "__main__":
    from repro.bench.printers import print_and_save

    outcome = parallel_engine_benchmark()
    print_and_save(outcome)

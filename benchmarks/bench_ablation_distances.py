"""Distance-function ablation: star distance as a GED surrogate."""

from conftest import run_once

from repro.bench.distances import ablation_distance_quality
from repro.bench.printers import print_and_save


def test_ablation_distance_quality(benchmark):
    result = run_once(benchmark, ablation_distance_quality)
    print_and_save(result)
    by_name = {row["distance"]: row for row in result.rows}
    # The substitution argument: star distance ranks pairs like exact GED...
    assert by_name["star_metric"]["spearman_vs_exact"] > 0.8
    # ...while remaining a metric (the NB-Index requirement)...
    assert by_name["star_metric"]["metric_on_sample"]
    # ...and the upper-bound estimators are valid upper bounds.
    assert by_name["bipartite_ub"]["always_upper_bound"]
    assert by_name["beam8_ub"]["always_upper_bound"]
    assert by_name["exact_astar"]["always_upper_bound"]

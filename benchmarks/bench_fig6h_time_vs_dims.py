"""Fig. 6(h): query time vs feature dimensionality (DUD)."""

from conftest import run_once

from repro.bench.printers import print_and_save
from repro.bench.scaling import fig6h_time_vs_dims


def test_fig6h_time_vs_dims(benchmark, dud_ctx):
    result = run_once(benchmark, fig6h_time_vs_dims, dud_ctx, (1, 5, 10), 10)
    print_and_save(result)
    # Paper claim: nearly flat — feature-space cost is negligible.
    times = result.column("nbindex_s")
    assert max(times) < max(min(times), 0.01) * 25

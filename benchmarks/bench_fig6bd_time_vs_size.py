"""Figs. 6(b-d): query time vs dataset size per engine."""

import pytest
from conftest import run_once

from repro.bench.harness import sweep_sizes
from repro.bench.printers import print_and_save
from repro.bench.scaling import fig6bd_time_vs_size


@pytest.mark.parametrize("dataset", ["dud", "dblp", "amazon"])
def test_fig6bd_time_vs_size(benchmark, dataset):
    result = run_once(
        benchmark, fig6bd_time_vs_size, dataset, sweep_sizes(), 10
    )
    print_and_save(result)
    # Paper claim: NB-Index scales better than the NN-index engines.
    last = result.rows[-1]
    assert last["nbindex_s"] < last["ctree_greedy_s"]

"""Fig. 6(k): index construction time vs the full distance matrix."""

from conftest import run_once

from repro.bench.harness import sweep_sizes
from repro.bench.printers import print_and_save
from repro.bench.scaling import fig6k_index_build


def test_fig6k_index_build(benchmark):
    result = run_once(benchmark, fig6k_index_build, "dud", sweep_sizes())
    print_and_save(result)
    for row in result.rows:
        # Paper claims: NB-Index builds far cheaper than the matrix, and VP
        # pruning leaves only a fraction of pairs needing exact distances
        # (<1% at DUD scale; the fraction shrinks with database size).
        assert row["nb_distance_calls"] < row["matrix_distance_calls"]
    fractions = result.column("calls_fraction")
    assert fractions[-1] < fractions[0]

"""Fig. 6(l): index memory footprint growth."""

from conftest import run_once

from repro.bench.harness import sweep_sizes
from repro.bench.printers import print_and_save
from repro.bench.scaling import fig6l_index_memory


def test_fig6l_index_memory(benchmark):
    result = run_once(benchmark, fig6l_index_memory, "dud", sweep_sizes())
    print_and_save(result)
    sizes = result.column("size")
    nb = result.column("nb_index_bytes")
    # Paper claim: linear growth — bytes/graph roughly constant, and far
    # below the quadratic matrix at scale.
    per_graph = [b / s for b, s in zip(nb, sizes)]
    assert max(per_graph) < min(per_graph) * 3
    assert nb[-1] < result.rows[-1]["matrix_bytes"] * 10

"""Fig. 6(i): interactive theta refinement (zoom in/out) response times."""

from conftest import run_once

from repro.bench.printers import print_and_save
from repro.bench.scaling import fig6i_zoom


def test_fig6i_zoom(benchmark, all_contexts):
    result = run_once(benchmark, fig6i_zoom, all_contexts, 10, 4)
    print_and_save(result)
    # Paper claim: session-based refinement is much cheaper than
    # recomputation from scratch.
    for row in result.rows:
        assert row["nb_refine_avg_s"] < row["ctree_recompute_avg_s"]

"""Answer quality (π) vs deadline budget — the degradation ladder's cost.

The resilience layer (``repro.resilience``) lets a query trade exactness
for latency: when a :class:`~repro.resilience.Deadline` expires, exact A*
GED calls degrade to polynomial upper bounds (beam, then bipartite — see
``docs/resilience.md``).  Upper bounds can only shrink θ-neighborhoods,
so π can only be *under*-reported — the answer stays valid, never
inflated.  This benchmark sweeps the time budget from "unlimited" down to
"already expired" on an exact-GED index and reports the achieved π,
answer size and degradation counts per budget, quantifying what a
deadline actually costs.

Runnable standalone (``python benchmarks/bench_degradation.py``) or
under pytest; both write the table under ``results/``.
"""

from __future__ import annotations

import time

from repro.engine import DistanceEngine
from repro.ged import ExactGED
from repro.graphs import quartile_relevance
from repro.index import NBIndex
from repro.resilience import Deadline

#: Wall-clock budgets to sweep (milliseconds); ``None`` = no deadline,
#: ``0.0`` = already expired at query start (every exact call degrades).
BUDGETS_MS = (None, 200.0, 50.0, 10.0, 0.0)


def degradation_benchmark(
    num_graphs: int = 24,
    seed: int = 11,
    theta: float = 4.0,
    k: int = 3,
):
    from repro.bench.harness import ExperimentResult

    try:
        from tests.conftest import random_database
    except ImportError:  # standalone run: repo root not on sys.path
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
        from tests.conftest import random_database

    database = random_database(
        seed=seed, size=num_graphs, min_nodes=3, max_nodes=5
    )
    distance = ExactGED()
    query_fn = quartile_relevance(database, quantile=0.3)
    engine = DistanceEngine(distance, workers=1, graphs=database.graphs)
    index = NBIndex.build(
        database, distance, engine=engine,
        num_vantage_points=4, branching=4, seed=seed,
    )

    rows = []
    for budget_ms in BUDGETS_MS:
        # Each budget recomputes its distances from scratch — cached exact
        # values would mask the deadline.
        engine._cache.clear()
        deadline = None if budget_ms is None else Deadline.after_ms(budget_ms)
        started = time.perf_counter()
        result = index.query(query_fn, theta, k, deadline=deadline)
        elapsed = time.perf_counter() - started
        rows.append({
            "budget_ms": "none" if budget_ms is None else f"{budget_ms:g}",
            "pi": result.pi,
            "answer_size": len(result.answer),
            "covered": len(result.covered),
            "degraded": result.stats.degraded,
            "degradation_events": result.stats.degradation_events,
            "query_s": elapsed,
        })
    return ExperimentResult(
        name="degradation_deadline",
        columns=["budget_ms", "pi", "answer_size", "covered",
                 "degraded", "degradation_events", "query_s"],
        rows=rows,
        notes=(
            f"exact-GED index, n={num_graphs} θ={theta:g} k={k}; deadline "
            "degradations replace exact GED with upper bounds, so π is a "
            "lower bound on the exact-distance π"
        ),
    )


def _check(result) -> None:
    by_budget = {row["budget_ms"]: row for row in result.rows}
    unlimited = by_budget["none"]
    expired = by_budget["0"]
    assert not unlimited["degraded"], "no deadline must mean no degradation"
    assert expired["degraded"], "an expired deadline must degrade"
    assert expired["degradation_events"] > 0
    for row in result.rows:
        assert 0.0 <= row["pi"] <= 1.0
        assert row["answer_size"] > 0, "degraded queries still answer"


def test_degradation_deadline(benchmark):
    from conftest import run_once

    from repro.bench.printers import print_and_save

    result = run_once(benchmark, degradation_benchmark)
    print_and_save(result)
    _check(result)


if __name__ == "__main__":
    from repro.bench.printers import print_and_save

    outcome = degradation_benchmark()
    print_and_save(outcome)
    _check(outcome)

"""Shared benchmark fixtures.

Contexts are session-scoped: dataset generation and offline index builds
happen once per dataset and are shared across benchmark files — matching
the paper's setup, where indexes are built offline and only query time is
measured.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchContext


@pytest.fixture(scope="session")
def dud_ctx() -> BenchContext:
    return BenchContext.create("dud")


@pytest.fixture(scope="session")
def dblp_ctx() -> BenchContext:
    return BenchContext.create("dblp")


@pytest.fixture(scope="session")
def amazon_ctx() -> BenchContext:
    return BenchContext.create("amazon")


@pytest.fixture(scope="session")
def all_contexts(dud_ctx, dblp_ctx, amazon_ctx) -> list[BenchContext]:
    return [dud_ctx, dblp_ctx, amazon_ctx]


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    Experiment drivers are full parameter sweeps, not micro-operations;
    one round is the meaningful unit.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)

"""Fig. 2(b): Algorithm 1 over NN-indexes does not scale with database size."""

from conftest import run_once

from repro.bench.harness import sweep_sizes
from repro.bench.printers import print_and_save
from repro.bench.scaling import fig2b_baseline_scaling


def test_fig2b_baseline_scaling(benchmark):
    result = run_once(
        benchmark, fig2b_baseline_scaling, "dud", sweep_sizes(), 10
    )
    print_and_save(result)
    # Paper claim: runtime grows superlinearly with size for every
    # NN-index-backed variant of Algorithm 1.
    times = result.column("ctree_greedy_s")
    sizes = result.column("size")
    assert times[-1] > times[0]
    growth = times[-1] / max(times[0], 1e-9)
    assert growth > (sizes[-1] / sizes[0]) * 0.5  # at least near-linear

"""No-op observability overhead guard (<5%).

Every hot path in the library — the distance engine, the GED metrics, the
NB-Index build and query, the greedy algorithms — is instrumented with
``repro.obs`` helper calls that hit no-op implementations while
observability is off (the default).  This benchmark verifies that those
disabled call sites are effectively free:

* ``stubbed`` — the same workload with the ``repro.obs`` module-level
  helpers swapped for bare lambdas: the cheapest the instrumented call
  sites could possibly be, standing in for an uninstrumented build;
* ``disabled`` — the shipping default (``NullRegistry``/``NullTracer``);
* ``enabled`` — full recording, reported for information (recording is
  allowed to cost more; only the *disabled* path is guarded).

The guard asserts ``disabled ≤ stubbed × 1.05`` on min-of-repeats
timings, i.e. the off-by-default dispatch overhead stays under 5% of the
representative query workload.  Per-call no-op helper costs are reported
alongside so a regression points at the offending helper.

Runnable standalone (``python benchmarks/bench_obs_overhead.py``) or
under pytest; both write the table under ``results/``.
"""

from __future__ import annotations

import contextlib
import time

from repro import obs
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.nbindex import NBIndex

#: Allowed no-op overhead of the disabled obs path vs. bare-lambda stubs.
OVERHEAD_BUDGET = 0.05

_HELPERS = ("counter", "gauge", "observe_time", "histogram", "timer", "span")


@contextlib.contextmanager
def _stubbed_helpers():
    """Swap the ``repro.obs`` hot-path helpers for bare lambdas.

    Instrumented modules call ``obs.counter(...)`` etc. through the module
    attribute, so rebinding here reaches every call site; this is the
    lower bound an uninstrumented build could achieve.
    """

    class _NullSpan:
        __slots__ = ()

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def set(self, **attrs):
            pass

    null_span = _NullSpan()

    saved = {name: getattr(obs, name) for name in _HELPERS}
    try:
        obs.counter = lambda name, value=1: None
        obs.gauge = lambda name, value: None
        obs.observe_time = lambda name, seconds: None
        obs.histogram = lambda name, value, buckets=None: None
        obs.timer = lambda name: null_span
        obs.span = lambda name, **attrs: null_span
        yield
    finally:
        for name, fn in saved.items():
            setattr(obs, name, fn)


def _query_workload(index, query_fn, theta, k, rounds):
    started = time.perf_counter()
    for _ in range(rounds):
        index.query(query_fn, theta, k)
    return time.perf_counter() - started


def _per_call_nanos(fn, calls=200_000):
    started = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - started) / calls * 1e9


def obs_overhead_benchmark(
    num_graphs: int = 120,
    seed: int = 11,
    k: int = 5,
    rounds: int = 40,
    repeats: int = 5,
):
    from repro.bench.harness import ExperimentResult
    from repro.datasets import GENERATORS, calibrate_theta

    obs.disable()
    database = GENERATORS["dud"](num_graphs=num_graphs, seed=seed)
    distance = StarDistance()
    theta = calibrate_theta(database, distance, quantile=0.05, rng=seed)
    query_fn = quartile_relevance(database)
    index = NBIndex.build(
        database, distance, num_vantage_points=8, branching=6, seed=seed
    )
    index.query(query_fn, theta, k)  # warm caches before timing

    def _build_once():
        started = time.perf_counter()
        NBIndex.build(
            database, StarDistance(), num_vantage_points=8, branching=6,
            seed=seed,
        )
        return time.perf_counter() - started

    # Min-of-repeats, variants interleaved so drift hits all three alike.
    timings = {"stubbed": [], "disabled": [], "enabled": []}
    builds = {"stubbed": [], "disabled": []}
    for _ in range(repeats):
        with _stubbed_helpers():
            timings["stubbed"].append(
                _query_workload(index, query_fn, theta, k, rounds)
            )
            builds["stubbed"].append(_build_once())
        timings["disabled"].append(
            _query_workload(index, query_fn, theta, k, rounds)
        )
        builds["disabled"].append(_build_once())
        with obs.observe():
            timings["enabled"].append(
                _query_workload(index, query_fn, theta, k, rounds)
            )
    best = {variant: min(values) for variant, values in timings.items()}
    best_build = {variant: min(values) for variant, values in builds.items()}
    overhead = best["disabled"] / best["stubbed"] - 1.0
    build_overhead = best_build["disabled"] / best_build["stubbed"] - 1.0

    def _span_once():
        with obs.span("bench.noop"):
            pass

    rows = [
        {
            "variant": variant,
            "total_s": best[variant],
            "per_query_ms": best[variant] / rounds * 1e3,
            "build_s": best_build.get(variant),
            "vs_stubbed": best[variant] / best["stubbed"] - 1.0,
            "within_budget": (
                best[variant] <= best["stubbed"] * (1.0 + OVERHEAD_BUDGET)
                and build_overhead <= OVERHEAD_BUDGET
                if variant == "disabled" else None
            ),
        }
        for variant in ("stubbed", "disabled", "enabled")
    ]
    return ExperimentResult(
        name="obs_overhead",
        columns=["variant", "total_s", "per_query_ms", "build_s",
                 "vs_stubbed", "within_budget"],
        rows=rows,
        notes=(
            f"dud n={num_graphs} k={k}, {rounds} queries/repeat, "
            f"min of {repeats}; disabled-vs-stubbed overhead "
            f"{overhead * 100:+.2f}% query / {build_overhead * 100:+.2f}% "
            f"build (budget {OVERHEAD_BUDGET * 100:.0f}%); "
            f"no-op per call: counter "
            f"{_per_call_nanos(lambda: obs.counter('bench.noop')):.0f}ns, "
            f"span {_per_call_nanos(_span_once):.0f}ns"
        ),
    )


def test_obs_overhead(benchmark):
    from conftest import run_once

    from repro.bench.printers import print_and_save

    result = run_once(benchmark, obs_overhead_benchmark)
    print_and_save(result)
    by_name = {row["variant"]: row for row in result.rows}
    assert by_name["disabled"]["within_budget"], (
        f"disabled obs path exceeds the {OVERHEAD_BUDGET:.0%} no-op budget: "
        f"{by_name['disabled']['vs_stubbed']:+.2%} vs stubbed helpers"
    )


if __name__ == "__main__":
    from repro.bench.printers import print_and_save

    outcome = obs_overhead_benchmark()
    print_and_save(outcome)
    disabled = next(r for r in outcome.rows if r["variant"] == "disabled")
    if not disabled["within_budget"]:
        raise SystemExit(
            f"disabled obs path exceeds the {OVERHEAD_BUDGET:.0%} budget: "
            f"{disabled['vs_stubbed']:+.2%}"
        )

"""Shard scaling benchmark: build + query cost vs shard count.

Sweeps shard counts over both partitioners and measures, per configuration:

* **build** — total bundle build time and the *slowest single shard*
  (the wall-clock a parallel S-worker build would take, since shard
  builds are independent);
* **query** — coordinator latency (min of repeats) against the
  single-index reference, plus the coordinator-overhead counters that
  explain it: pulls, π̂ refinements, scatter resolves, broadcasts,
  foreign embeddings and total distance calls;
* **identity** — every sharded answer is checked bit-for-bit (ids,
  gains, ordering, coverage) against the single index; a benchmark row
  with ``identical: false`` is a correctness bug, not a slow run.

Runnable standalone (``python benchmarks/bench_shard_scaling.py``) or
under pytest; both write ``BENCH_shard_scaling.json`` at the repository
root.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.engine import DistanceEngine
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.nbindex import NBIndex
from repro.index.pivec import choose_thresholds
from repro.shard import ShardedIndex, build_shards

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard_scaling.json"

BUILD = dict(num_vantage_points=10, branching=8)


def _identical(got, want) -> bool:
    return (
        got.answer == want.answer
        and got.gains == want.gains
        and got.covered == want.covered
    )


def _time_query(index, query_fn, theta, k, repeats):
    """Min-of-repeats latency plus the last run's result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = index.query(query_fn, theta, k)
        best = min(best, time.perf_counter() - started)
    return best, result


def shard_scaling_benchmark(
    num_graphs: int = 120,
    seed: int = 11,
    k: int = 8,
    shard_counts=(1, 2, 4, 8),
    partitioners=("hash", "clustering"),
    repeats: int = 3,
):
    from repro.datasets import GENERATORS

    db = GENERATORS["dud"](num_graphs=num_graphs, seed=seed)
    distance = StarDistance()
    engine = DistanceEngine(distance, graphs=db.graphs)
    # One global ladder for every configuration, so all indexes answer the
    # same rungs and theta choice cannot favor a row.
    ladder = choose_thresholds(
        db.graphs, engine, count=10, num_pairs=min(1000, num_graphs * 4),
        rng=np.random.default_rng(seed), engine=engine,
    )
    thetas = (ladder.values[3], ladder.values[6])
    query_fn = quartile_relevance(db)

    build_started = time.perf_counter()
    single = NBIndex.build(
        db, distance, thresholds=ladder, seed=seed, **BUILD
    )
    single_build_s = time.perf_counter() - build_started
    reference = {}
    for theta in thetas:
        seconds, result = _time_query(single, query_fn, theta, k, repeats)
        reference[theta] = {
            "result": result,
            "query_ms": seconds * 1e3,
            "distance_calls": result.stats.distance_calls,
        }

    rows = []
    for partitioner in partitioners:
        for num_shards in shard_counts:
            with tempfile.TemporaryDirectory() as out_dir:
                build_started = time.perf_counter()
                manifest_path = build_shards(
                    db, distance, num_shards=num_shards, out_dir=out_dir,
                    partitioner=partitioner, thresholds=ladder, seed=seed,
                    **BUILD,
                )
                build_s = time.perf_counter() - build_started
                sharded = ShardedIndex.load(manifest_path, db, distance)
                shard_seconds = sharded.manifest.build["shard_seconds"]
                queries = []
                for theta in thetas:
                    seconds, result = _time_query(
                        sharded, query_fn, theta, k, repeats
                    )
                    ref = reference[theta]
                    coord = result.stats.coordinator
                    queries.append({
                        "theta": round(float(theta), 3),
                        "query_ms": round(seconds * 1e3, 3),
                        "single_query_ms": round(ref["query_ms"], 3),
                        "overhead_x": round(
                            seconds * 1e3 / max(ref["query_ms"], 1e-9), 2
                        ),
                        "distance_calls": result.stats.distance_calls,
                        "single_distance_calls": ref["distance_calls"],
                        "pulls": coord["pulls"],
                        "pi_hat_refines": coord["pi_hat_refines"],
                        "refine_prunes": coord["refine_prunes"],
                        "scatter_resolves": coord["scatter_resolves"],
                        "broadcasts": coord["broadcasts"],
                        "foreign_embeds": coord["foreign_embeds"],
                        "identical": _identical(result, ref["result"]),
                    })
                sharded.invalidate_pools()
            rows.append({
                "partitioner": partitioner,
                "shards": num_shards,
                "build_s": round(build_s, 3),
                "max_shard_build_s": round(max(shard_seconds), 3),
                "parallel_build_speedup": round(
                    single_build_s / max(max(shard_seconds), 1e-9), 2
                ),
                "queries": queries,
            })

    document = {
        "benchmark": "shard_scaling",
        "dataset": f"dud n={num_graphs} seed={seed}",
        "k": k,
        "thetas": [round(float(t), 3) for t in thetas],
        "ladder": [round(float(v), 3) for v in ladder.values],
        "single_build_s": round(single_build_s, 3),
        "rows": rows,
    }
    _JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    return document


def _print_summary(document):
    print(f"wrote {_JSON_PATH}")
    header = (f"{'part':<11}{'S':>3}{'build s':>9}{'max shard s':>12}"
              f"{'q ms':>8}{'1x ms':>8}{'calls':>7}{'scatter':>8}{'ok':>4}")
    print(header)
    for row in document["rows"]:
        for q in row["queries"]:
            print(f"{row['partitioner']:<11}{row['shards']:>3}"
                  f"{row['build_s']:>9.2f}{row['max_shard_build_s']:>12.2f}"
                  f"{q['query_ms']:>8.1f}{q['single_query_ms']:>8.1f}"
                  f"{q['distance_calls']:>7}{q['scatter_resolves']:>8}"
                  f"{'y' if q['identical'] else 'N':>4}")


def test_shard_scaling():
    document = shard_scaling_benchmark(
        num_graphs=60, shard_counts=(1, 2, 4), repeats=2
    )
    _print_summary(document)
    for row in document["rows"]:
        for q in row["queries"]:
            assert q["identical"], (row["partitioner"], row["shards"], q)


if __name__ == "__main__":
    outcome = shard_scaling_benchmark()
    _print_summary(outcome)
    bad = [
        (row["partitioner"], row["shards"], q["theta"])
        for row in outcome["rows"]
        for q in row["queries"]
        if not q["identical"]
    ]
    if bad:
        raise SystemExit(f"sharded answers diverged from single index: {bad}")

"""Figs. 6(e-g): query time vs answer budget k."""

import pytest
from conftest import run_once

from repro.bench.printers import print_and_save
from repro.bench.scaling import fig6eg_time_vs_k


@pytest.mark.parametrize("ctx_name", ["dud", "dblp", "amazon"])
def test_fig6eg_time_vs_k(benchmark, ctx_name, request):
    ctx = request.getfixturevalue(f"{ctx_name}_ctx")
    result = run_once(benchmark, fig6eg_time_vs_k, ctx, (5, 10, 25))
    print_and_save(result)
    for row in result.rows:
        assert row["nbindex_s"] < row["ctree_greedy_s"] * 2.0
    # Paper claim: DIV is nearly flat in k (its per-k work is tiny once the
    # diversity graph exists).
    div_times = result.column("div_s")
    assert max(div_times) < max(min(div_times), 0.01) * 20

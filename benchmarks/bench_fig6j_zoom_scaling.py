"""Fig. 6(j): refinement response time vs dataset size."""

from conftest import run_once

from repro.bench.harness import sweep_sizes
from repro.bench.printers import print_and_save
from repro.bench.scaling import fig6j_zoom_scaling


def test_fig6j_zoom_scaling(benchmark):
    result = run_once(
        benchmark, fig6j_zoom_scaling, "dud", sweep_sizes(), 10, 3
    )
    print_and_save(result)
    for row in result.rows:
        assert row["nb_refine_avg_s"] < row["ctree_recompute_avg_s"]

"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e . --no-use-pep517` works in
offline environments that lack the `wheel` package required by PEP-517
editable builds.
"""

from setuptools import setup

setup()

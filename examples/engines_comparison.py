#!/usr/bin/env python3
"""Engine comparison: one query, every algorithm in the repository.

Runs the same top-k representative workload through the NB-Index,
Algorithm 1 (plain, C-tree-backed and M-tree-backed), the lazy greedy,
the distance-matrix oracle, DisC, DIV(θ)/DIV(2θ) and traditional top-k,
reporting wall time, edit-distance work, and answer quality side by side —
a miniature of the paper's whole evaluation section.

Run:  python examples/engines_comparison.py
"""

import time

from repro import NBIndex, StarDistance, baseline_greedy, lazy_greedy, quartile_relevance
from repro.analysis import evaluate_answers
from repro.baselines import (
    CTree,
    DistanceMatrixOracle,
    MTree,
    disc_greedy,
    div_topk,
    traditional_top_k,
)
from repro.datasets import calibrate_theta, dud_like
from repro.ged import CountingDistance

K = 10


def timed(label, fn):
    started = time.perf_counter()
    result = fn()
    return label, result, time.perf_counter() - started


def main():
    database = dud_like(num_graphs=300, seed=13)
    distance = StarDistance()
    theta = calibrate_theta(database, distance, quantile=0.05, rng=13)
    q = quartile_relevance(database)
    print(f"n={len(database)}, relevant={len(database.relevant_indices(q))}, "
          f"theta={theta:.1f}, k={K}\n")

    print("building indexes offline...")
    index = NBIndex.build(database, distance, num_vantage_points=12,
                          branching=8, seed=13)
    ctree = CTree(database.graphs, distance, capacity=16, seed=13)
    mtree = MTree(database.graphs, distance, capacity=16, seed=13)
    oracle = DistanceMatrixOracle(database, distance)
    print(f"  NB-Index: {index.build_seconds:.1f}s; "
          f"distance matrix: {oracle.build_seconds:.1f}s\n")

    runs = [
        timed("NB-Index", lambda: index.query(q, theta, K)),
        timed("greedy (plain)", lambda: baseline_greedy(
            database, distance, q, theta, K)),
        timed("greedy (lazy)", lambda: lazy_greedy(
            database, distance, q, theta, K)),
        timed("greedy + C-tree", lambda: baseline_greedy(
            database, distance, q, theta, K, range_query=ctree.range_query)),
        timed("greedy + M-tree", lambda: baseline_greedy(
            database, distance, q, theta, K, range_query=mtree.range_query)),
        timed("distance matrix", lambda: oracle.greedy(q, theta, K)),
        timed("DisC (stop at k)", lambda: disc_greedy(
            database, distance, q, theta, range_query=mtree.range_query,
            stop_at_k=K)),
        timed("DIV(theta)", lambda: div_topk(
            database, distance, q, theta, K, 1.0,
            range_query=ctree.range_query)),
        timed("DIV(2theta)", lambda: div_topk(
            database, distance, q, theta, K, 2.0,
            range_query=ctree.range_query)),
    ]
    topk_answer = traditional_top_k(database, q, K)

    answers = {label: r.answer for label, r, _ in runs}
    answers["traditional top-k"] = topk_answer
    quality = evaluate_answers(database, distance, q, theta, answers)

    print(f"{'engine':<20}{'seconds':>9}{'pi(A)':>8}{'CR':>7}{'|A|':>5}")
    for label, result, seconds in runs:
        metrics = quality[label]
        print(f"{label:<20}{seconds:>9.3f}{metrics['pi']:>8.3f}"
              f"{metrics['compression_ratio']:>7.1f}"
              f"{metrics['answer_size']:>5}")
    metrics = quality["traditional top-k"]
    print(f"{'traditional top-k':<20}{'-':>9}{metrics['pi']:>8.3f}"
          f"{metrics['compression_ratio']:>7.1f}{metrics['answer_size']:>5}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fig. 1(b), literally: representative vs diversity-only selection in a
2-D metric space.

The paper's motivating picture: among the relevant objects, `g3` sits at
the center of a relevant cluster and `g4` is a relevant outlier at the
same distance from the already-chosen `g1`.  A diversity-only model scores
them equally; the representative model prefers the cluster center because
it *covers* its whole cluster.

This example rebuilds that geometry with points in R² (the engines are
metric-space generic — see `repro.metricspace`), runs REP and DIV side by
side, and shows REP picking cluster centers while DIV is indifferent.

Run:  python examples/metric_space_points.py
"""

import numpy as np

from repro.baselines import div_topk
from repro.core import baseline_greedy
from repro.graphs.relevance import WeightedScoreThreshold
from repro.index import NBIndex
from repro.metricspace import vector_database


def make_points(rng):
    """Three relevant clusters of different sizes plus relevant outliers."""
    clusters = [
        (np.array([0.0, 0.0]), 12),   # big cluster
        (np.array([10.0, 0.0]), 6),   # medium cluster
        (np.array([0.0, 10.0]), 4),   # small cluster
    ]
    points = []
    for center, size in clusters:
        points.append(center)  # the exact center, so it's selectable
        points.extend(center + rng.normal(0, 0.5, size=(size - 1, 2)))
    # Relevant outliers — far from everything (the paper's g4).
    points.append(np.array([20.0, 20.0]))
    points.append(np.array([-15.0, 18.0]))
    return np.vstack(points)


def main():
    rng = np.random.default_rng(2)
    points = make_points(rng)
    database, distance = vector_database(points)
    everything_relevant = WeightedScoreThreshold([0.0, 0.0], threshold=-1.0)
    theta = 2.0  # covers one cluster, not two
    k = 3

    rep = baseline_greedy(database, distance, everything_relevant, theta, k)
    div = div_topk(database, distance, everything_relevant, theta, k, 1.0)

    def describe(label, answer, pi):
        print(f"\n{label} (pi={pi:.2f}):")
        for gid in answer:
            x, y = points[gid]
            print(f"  point {gid:>2} at ({x:6.1f}, {y:6.1f})")

    describe("REP top-3", rep.answer, rep.pi)
    describe("DIV(theta) top-3", div.answer, div.pi)

    # The same query through the NB-Index — the index only needs a metric.
    index = NBIndex.build(database, distance, num_vantage_points=6,
                          branching=4, seed=0)
    indexed = index.query(everything_relevant, theta, k)
    describe("NB-Index top-3", indexed.answer, indexed.pi)

    print("\nREP's picks sit at the three cluster centers (coverage-ordered "
          "by cluster size); the relevant outliers at (20,20) and (-15,18) "
          "are never chosen — they represent only themselves, which is the "
          "paper's argument against diversity-only and covering models.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Interactive θ refinement — the paper's "zoom level" workflow (Sec. 7).

The right θ is rarely known up front.  Like adjusting map zoom, an analyst
re-runs the query at nearby thresholds and watches the answer coarsen
(large θ: few exemplars cover everything) or sharpen (small θ: exemplars
for fine structural families).  The NB-Index makes each refinement cheap:
the initialization phase is reused, only search-and-update re-runs.

Run:  python examples/interactive_zoom.py
"""

from repro import NBIndex, RefinementSession, StarDistance, quartile_relevance
from repro.datasets import calibrate_theta, amazon_like


def main():
    database = amazon_like(num_graphs=250, seed=5)
    distance = StarDistance()
    theta0 = calibrate_theta(database, distance, quantile=0.05, rng=5)
    print(f"{len(database)} co-purchase neighborhoods; starting theta={theta0:.0f}")

    index = NBIndex.build(
        database, distance, num_vantage_points=12, branching=8, seed=5
    )
    session = RefinementSession(index, quartile_relevance(database), k=8)

    # Initial query, then a plausible analyst trajectory: zoom out twice
    # looking for coverage, then zoom back in for finer families.
    session.query(theta0)
    session.zoom_out(0.2)
    session.zoom_out(0.2)
    session.zoom_in(0.3)
    session.zoom_in(0.1)

    print(f"\n{'step':<6}{'theta':>10}{'pi(A)':>10}{'CR':>8}{'seconds':>10}")
    for step_number, step in enumerate(session.history):
        print(f"{step_number:<6}{step.theta:>10.1f}{step.result.pi:>10.3f}"
              f"{step.result.compression_ratio:>8.1f}{step.seconds:>10.3f}")

    first = session.history[0].seconds
    refinements = [s.seconds for s in session.history[1:]]
    print(f"\ninitial query: {first:.3f}s; refinements avg: "
          f"{sum(refinements) / len(refinements):.3f}s")
    print("Refinements reuse the session's initialization phase (relevant "
          "set, pi-hat columns, distance cache), so zooming is much cheaper "
          "than the first query — the paper's Fig. 6(i) behaviour.")


if __name__ == "__main__":
    main()

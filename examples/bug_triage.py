#!/usr/bin/env python3
"""Bug-triage scenario — Table 1, Example 3 of the paper.

Crash reports arrive as function call graphs, scored by recency-weighted
frequency.  The paper's warning: a traditional top-k of the hottest
crashes returns clones of one bug's call graph ("the same core
bug-inducing subgraph"); the representative query returns the spectrum —
one exemplar crash per distinct bug.

Run:  python examples/bug_triage.py
"""

from collections import Counter

from repro import StarDistance, baseline_greedy
from repro.baselines import traditional_top_k
from repro.datasets import calibrate_theta
from repro.datasets.callgraphs import bug_class, callgraphs_like, recency_query

K = 5


def classify(database, answer):
    return Counter(bug_class(database[gid]) for gid in answer)


def main():
    database = callgraphs_like(num_graphs=350, seed=23)
    distance = StarDistance()
    theta = calibrate_theta(database, distance, quantile=0.05, rng=23)
    q = recency_query(0.75, database)
    relevant = database.relevant_indices(q)
    print(f"{len(database)} crash reports; {len(relevant)} hot this week; "
          f"theta={theta:.0f}")
    print("bug classes in the database:",
          dict(sorted(classify(database, range(len(database))).items())))

    top = traditional_top_k(database, q, K)
    rep = baseline_greedy(database, distance, q, theta, K)

    print(f"\ntraditional top-{K} bug classes:   "
          f"{dict(sorted(classify(database, top).items()))}")
    print(f"representative top-{K} bug classes: "
          f"{dict(sorted(classify(database, rep.answer).items()))}")
    print(f"\nREP coverage: pi={rep.pi:.2f}, CR={rep.compression_ratio:.1f} — "
          "one exemplar crash per bug family for the triage queue, instead "
          "of five duplicates of the loudest bug.")


if __name__ == "__main__":
    main()

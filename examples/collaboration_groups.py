#!/usr/bin/env python3
"""Collaboration-group scenario — the paper's DBLP application (Table 1,
example 4 / Sec. 8.1).

Database graphs are 2-hop collaboration neighborhoods labelled by research
community; the feature is the group's activity level.  A top-k
representative query returns the most active groups that *don't overlap*:
each exemplar stands for a distinct cluster of collaboration structures,
answering "do the most active groups collaborate within one community or
across several?".

This example also shows the NB-Index session API: the index is built once
and the relevance function reused across queries.

Run:  python examples/collaboration_groups.py
"""

from collections import Counter

from repro import NBIndex, StarDistance, quartile_relevance
from repro.datasets import calibrate_theta, dblp_like


def community_profile(graph):
    """Fraction of members in the group's dominant community."""
    counts = Counter(graph.node_labels)
    dominant, count = counts.most_common(1)[0]
    return dominant, count / graph.num_nodes


def main():
    database = dblp_like(num_graphs=250, seed=3)
    distance = StarDistance()
    theta = calibrate_theta(database, distance, quantile=0.05, rng=3)
    print(f"{len(database)} collaboration groups; theta={theta:.0f}")

    index = NBIndex.build(
        database, distance, num_vantage_points=12, branching=8, seed=3
    )
    print(f"NB-Index built in {index.build_seconds:.1f}s "
          f"({index.stats()['distance_calls']} edit distances)")

    # Relevant = most active quartile; the session is reused for both k's.
    q = quartile_relevance(database)
    session = index.session(q)

    for k in (5, 10):
        result = session.query(theta, k)
        print(f"\ntop-{k} representative groups "
              f"(pi={result.pi:.2f}, CR={result.compression_ratio:.1f}):")
        for gid in result.answer:
            graph = database[gid]
            dominant, purity = community_profile(graph)
            activity = database.feature_vector(gid)[0]
            kind = "single-community" if purity > 0.8 else "cross-community"
            print(f"  group {gid:>3}: {graph.num_nodes} members, "
                  f"activity {activity:6.1f}, dominant community {dominant} "
                  f"({purity:.0%} — {kind})")

    print("\nEach exemplar represents a distinct cluster of active "
          "collaboration structures; overlapping neighborhoods were "
          "penalized away by the representative objective.")


if __name__ == "__main__":
    main()

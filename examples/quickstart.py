#!/usr/bin/env python3
"""Quickstart: answer a top-k representative query in ~20 lines.

Generates a small molecule-like database, declares the top quartile of a
binding-affinity score relevant, and asks for the 5 relevant molecules
that best represent all relevant molecules (within edit distance θ).

Run:  python examples/quickstart.py
"""

from repro import StarDistance, TopKRepresentativeQuery, quartile_relevance
from repro.datasets import calibrate_theta, dud_like


def main():
    # 1. A graph database: molecules tagged with 10-dim affinity vectors.
    database = dud_like(num_graphs=300, seed=7)
    print(f"database: {database.summary()}")

    # 2. A metric structural distance (polynomial star edit distance).
    distance = StarDistance()

    # 3. Calibrate θ from the dataset's distance distribution, as the
    #    paper does from its CDF plots.
    theta = calibrate_theta(database, distance, quantile=0.05, rng=7)
    print(f"calibrated theta = {theta:.1f}")

    # 4. Relevance is defined at query time: top quartile of mean affinity.
    q = quartile_relevance(database)
    print(f"relevant graphs: {len(database.relevant_indices(q))}")

    # 5. Ask for the 5 most representative relevant molecules.
    engine = TopKRepresentativeQuery(database, distance, seed=7)
    result = engine.run(q, theta=theta, k=5)

    print(f"\nanswer ids: {result.answer}")
    print(f"representative power pi(A) = {result.pi:.3f}")
    print(f"compression ratio = {result.compression_ratio:.1f} "
          "(relevant molecules represented per exemplar)")
    print(f"per-pick marginal gains: {result.gains}")
    for gid in result.answer:
        graph = database[gid]
        print(f"  exemplar {gid}: {graph.num_nodes} atoms, "
              f"{graph.num_edges} bonds")


if __name__ == "__main__":
    main()

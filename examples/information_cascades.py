#!/usr/bin/env python3
"""Information-cascade scenario — Table 1, Example 2 of the paper.

A database of cascade propagation trees, each tagged with the topics it
covers; the analyst queries for cascades about a topic set.  The paper's
warning: a traditional top-k "is prone to identifying cascades from a
single community of highly active users — cascades arising out of populous
countries are likely to eclipse remaining communities."  The top-k
representative query fixes this by rewarding coverage of the distinct
cascade *structures*, which track communities.

Run:  python examples/information_cascades.py
"""

from collections import Counter

from repro import StarDistance, baseline_greedy
from repro.baselines import traditional_top_k
from repro.datasets import calibrate_theta
from repro.datasets.cascades import cascades_like, origin_community, topic_query

QUERY_TOPICS = [0, 2, 4, 6]  # a broad topic set matching several communities
K = 6


def community_mix(database, answer):
    return Counter(origin_community(database[gid]) for gid in answer)


def main():
    database = cascades_like(num_graphs=400, seed=17)
    distance = StarDistance()
    theta = calibrate_theta(database, distance, quantile=0.05, rng=17)
    q = topic_query(QUERY_TOPICS, threshold=0.2)
    relevant = database.relevant_indices(q)

    print(f"{len(database)} cascades; {len(relevant)} relevant to topics "
          f"{QUERY_TOPICS}; theta={theta:.0f}")
    overall = Counter(origin_community(g) for g in database)
    print("community sizes in the database:",
          dict(sorted(overall.items())))

    top = traditional_top_k(database, q, K)
    rep = baseline_greedy(database, distance, q, theta, K)

    print(f"\ntraditional top-{K} origins:  "
          f"{dict(sorted(community_mix(database, top).items()))}")
    print(f"representative top-{K} origins: "
          f"{dict(sorted(community_mix(database, rep.answer).items()))}")
    print(f"\ncoverage: traditional-style ranking ignores it; "
          f"REP covers pi={rep.pi:.2f} of relevant cascades "
          f"(CR={rep.compression_ratio:.1f}).")
    print("The representative answer spreads across communities instead of "
          "echoing the most populous one.")


if __name__ == "__main__":
    main()

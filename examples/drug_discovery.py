#!/usr/bin/env python3
"""Drug discovery scenario — the paper's Sec. 8.4 / Fig. 7 workflow.

A chemist screens a molecular library against one protein target (the
paper uses acetylcholinesterase, the Alzheimer's drug target) and wants a
handful of lead molecules.  Two queries are compared:

* the *traditional top-k*: the 5 highest-affinity molecules — which tend
  to be decorations of one scaffold (chloro- vs bromo-benzene, Fig. 1(a));
* the *top-k representative* query: 5 relevant molecules that jointly
  represent the relevant set — one lead per structural family.

Run:  python examples/drug_discovery.py
"""

from repro import StarDistance, baseline_greedy, quartile_relevance
from repro.analysis import evaluate_answers
from repro.baselines import answer_set_redundancy, traditional_top_k
from repro.datasets import calibrate_theta, dud_like

TARGET = 0  # index of the screened protein target
K = 5


def describe(database, answer, label):
    print(f"\n{label}")
    for gid in answer:
        graph = database[gid]
        histogram = graph.label_histogram()
        formula = "".join(
            f"{symbol}{count}" for symbol, count in sorted(histogram.items())
        )
        print(f"  molecule {gid:>3}: {formula} "
              f"({graph.num_nodes} atoms, {graph.num_edges} bonds)")


def main():
    database = dud_like(num_graphs=400, seed=11, outlier_fraction=0.0)
    distance = StarDistance()
    theta = calibrate_theta(database, distance, quantile=0.05, rng=11)

    # Relevance: top quartile of affinity against the chosen target.
    q = quartile_relevance(database, dims=[TARGET])
    relevant = database.relevant_indices(q)
    print(f"screened {len(database)} molecules; "
          f"{len(relevant)} active against target {TARGET}; theta={theta:.1f}")

    top = traditional_top_k(database, q, K)
    rep = baseline_greedy(database, distance, q, theta, K)

    describe(database, top, f"Traditional top-{K} (affinity order):")
    describe(database, rep.answer, f"Top-{K} representative (REP):")

    quality = evaluate_answers(
        database, distance, q, theta,
        {"traditional": top, "representative": rep.answer},
    )
    spread_top = answer_set_redundancy(database, distance, top)
    spread_rep = answer_set_redundancy(database, distance, rep.answer)

    print("\nanswer-set comparison:")
    print(f"  {'':<16}{'pi(A)':>8}{'CR':>8}{'mean pairwise dist':>22}")
    print(f"  {'traditional':<16}{quality['traditional']['pi']:>8.3f}"
          f"{quality['traditional']['compression_ratio']:>8.1f}"
          f"{spread_top['mean']:>22.1f}")
    print(f"  {'representative':<16}{quality['representative']['pi']:>8.3f}"
          f"{quality['representative']['compression_ratio']:>8.1f}"
          f"{spread_rep['mean']:>22.1f}")
    print("\nThe representative answer spans distinct scaffold families "
          "(larger pairwise distances) and covers far more of the active "
          "molecules — one lead per family to take into assays.")


if __name__ == "__main__":
    main()
